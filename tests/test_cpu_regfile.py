"""Register file tests: architectural state, scoreboard, port taps."""

from repro.cpu.regfile import IDLE_SAMPLE, RegisterFile


class TestArchitectural:
    def test_x0_reads_zero(self):
        rf = RegisterFile()
        rf.write(0, 123)
        assert rf.read(0) == 0

    def test_write_read(self):
        rf = RegisterFile()
        rf.write(5, 42)
        assert rf.read(5) == 42

    def test_values_masked_to_64_bits(self):
        rf = RegisterFile()
        rf.write(5, 1 << 64)
        assert rf.read(5) == 0

    def test_reset(self):
        rf = RegisterFile()
        rf.write(5, 42)
        rf.set_ready(5, 100)
        rf.reset()
        assert rf.read(5) == 0
        assert rf.ready(5, 0)


class TestScoreboard:
    def test_initially_ready(self):
        rf = RegisterFile()
        assert all(rf.ready(r, 0) for r in range(32))

    def test_set_ready_delays_consumers(self):
        rf = RegisterFile()
        rf.set_ready(7, 10)
        assert not rf.ready(7, 9)
        assert rf.ready(7, 10)

    def test_x0_always_ready(self):
        rf = RegisterFile()
        rf.set_ready(0, 10**9)  # dropped: x0 untouched
        assert rf.ready(0, 0)

    def test_mark_pending(self):
        rf = RegisterFile()
        rf.mark_pending(9)
        assert not rf.ready(9, 10**6)
        rf.set_ready(9, 5)
        assert rf.ready(9, 5)

    def test_none_destination_is_noop(self):
        rf = RegisterFile()
        rf.set_ready(None, 10)
        rf.mark_pending(None)
        assert all(rf.ready(r, 0) for r in range(32))


class TestPortTaps:
    def test_idle_cycle_has_no_activity(self):
        rf = RegisterFile(num_read_ports=4, num_write_ports=2)
        rf.begin_cycle()
        assert rf.port_samples() == [IDLE_SAMPLE] * 6

    def test_read_tap_records_value(self):
        rf = RegisterFile()
        rf.write(5, 99)
        rf.begin_cycle()
        rf.record_read(0, 5)
        assert rf.port_samples()[0] == (1, 99)

    def test_x0_read_taps_as_zero(self):
        rf = RegisterFile()
        rf.begin_cycle()
        rf.record_read(1, 0)
        assert rf.port_samples()[1] == (1, 0)

    def test_write_tap_records_value(self):
        rf = RegisterFile(num_read_ports=4, num_write_ports=2)
        rf.begin_cycle()
        rf.record_write(0, 5, 0x1234)
        samples = rf.port_samples()
        assert samples[4] == (1, 0x1234)

    def test_begin_cycle_clears_previous_activity(self):
        rf = RegisterFile()
        rf.begin_cycle()
        rf.record_read(0, 1)
        rf.begin_cycle()
        assert rf.port_samples()[0] == IDLE_SAMPLE

    def test_sample_order_reads_then_writes(self):
        rf = RegisterFile(num_read_ports=2, num_write_ports=1)
        rf.begin_cycle()
        rf.write(3, 7)
        rf.record_read(0, 3)
        rf.record_write(0, 3, 8)
        assert rf.port_samples() == [(1, 7), IDLE_SAMPLE, (1, 8)]
