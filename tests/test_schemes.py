"""The redundancy-scheme framework: topology, verdicts, equivalence.

The full-matrix acceptance checks (SafeDM bit-identity and DME
final-state equivalence over all 29 kernels) run in the CI ``schemes``
job via ``benchmarks/bench_schemes.py``; these tests keep the framework
honest on a fast kernel subset.
"""

import dataclasses

import pytest

from repro.schemes import SCHEME_KINDS, SchemeSpec, make_scheme
from repro.schemes.base import (
    RedundancyScheme,
    build_scheme,
    delta_equivalence,
)
from repro.schemes.dme import (
    DMETransformError,
    decorrelated_program,
    dme_register_map,
    dme_transform_report,
)
from repro.schemes.matrix import matrix_table, run_scheme_trials
from repro.schemes.tmr import MajorityVoter, majority_value
from repro.soc.config import SocConfig
from repro.soc.experiment import run_redundant
from repro.workloads import program


class TestSchemeSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme kind"):
            SchemeSpec(kind="quadruple")

    def test_zero_stagger_rejected(self):
        with pytest.raises(ValueError):
            SchemeSpec(kind="lockstep", stagger=0)

    def test_tmr_needs_three_replicas(self):
        with pytest.raises(ValueError):
            SchemeSpec(kind="tmr", replicas=2)

    def test_multipair_needs_disjoint_pairs(self):
        with pytest.raises(ValueError):
            SchemeSpec(kind="multipair", pairs=((0, 1),))
        with pytest.raises(ValueError):
            SchemeSpec(kind="multipair", pairs=((0, 1), (1, 2)))

    def test_dme_identity_rotation_rejected(self):
        with pytest.raises(ValueError, match="identity"):
            SchemeSpec(kind="dme", dme_rotation=0)

    def test_dme_misaligned_shift_rejected(self):
        with pytest.raises(ValueError):
            SchemeSpec(kind="dme", dme_text_shift=0x21)

    def test_spec_joins_sim_cache_key(self):
        from repro.runner.cache import sim_config_digest
        plain = sim_config_digest(SocConfig())
        tmr = sim_config_digest(
            SocConfig(scheme=SchemeSpec(kind="tmr")))
        assert plain != tmr


class TestFactory:
    def test_kind_string_builds_each_scheme(self):
        for kind in SCHEME_KINDS:
            scheme = build_scheme(kind)
            assert scheme.kind == kind
            assert isinstance(scheme, RedundancyScheme)

    def test_instance_passes_through(self):
        scheme = build_scheme("tmr")
        assert build_scheme(scheme) is scheme

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            build_scheme(42)

    def test_make_scheme_wrapper(self):
        assert make_scheme(SchemeSpec(kind="lockstep")).kind \
            == "lockstep"


class TestDeltaEquivalence:
    def test_zero_delta_is_plain_equality(self):
        assert delta_equivalence(0) is None

    def test_tolerates_exactly_the_delta(self):
        eq = delta_equivalence(0x1000_0000)
        word = (0x13, 1)
        assert eq(word + (0x4000_0000,), word + (0x5000_0000,))
        assert not eq(word + (0x4000_0000,), word + (0x5000_0008,))
        # The delta is directional: shifted-down values differ.
        assert not eq(word + (0x5000_0000,), word + (0x4000_0000,))

    def test_word_or_enable_divergence_is_never_tolerated(self):
        eq = delta_equivalence(0x1000_0000)
        assert not eq((0x13, 1, 0x4000_0000), (0x33, 1, 0x5000_0000))
        assert not eq((0x13, 1, 0x4000_0000), (0x13, 0, 0x5000_0000))


class TestMajorityVoter:
    def test_all_agree(self):
        voter = MajorityVoter()
        voter.sample(5, [(1, 1, 7)], [(1, 1, 7)], [(1, 1, 7)])
        assert voter.stats.agreed == 1
        assert not voter.event_detected

    def test_two_agree_flags_minority(self):
        voter = MajorityVoter()
        voter.sample(5, [(1, 1, 7)], [(1, 1, 9)], [(1, 1, 7)])
        assert voter.stats.corrected == 1
        assert voter.stats.outvoted == (0, 1, 0)
        assert voter.event_detected
        assert voter.first_event_cycle() == 5

    def test_none_agree_is_uncorrectable(self):
        voter = MajorityVoter()
        voter.sample(5, [(1, 1, 7)], [(1, 1, 8)], [(1, 1, 9)])
        assert voter.stats.uncorrectable == 1

    def test_flush_votes_stream_residue(self):
        voter = MajorityVoter()
        voter.sample(5, [(1, 1, 7)], [], [])  # replica 0 ran long
        voter.flush(9)
        assert voter.stats.corrected == 1
        assert voter.stats.first_corrected_cycle == 9

    def test_majority_value(self):
        assert majority_value((5, 5, 7)) == 5
        assert majority_value((7, 5, 5)) == 5
        assert majority_value((5, 7, 5)) == 5
        assert majority_value((1, 2, 3)) is None


class TestSafeDMPairBitIdentity:
    """scheme="safedm" is the extracted legacy path: every RunResult
    observable must match the pre-refactor ``run_redundant`` exactly,
    on both execution tiers."""

    @pytest.mark.parametrize("kernel", ["binarysearch", "cosf"])
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_matches_legacy_run(self, kernel, engine):
        prog = program(kernel)
        legacy = run_redundant(prog, benchmark=kernel, engine=engine)
        scheme = run_redundant(prog, benchmark=kernel, engine=engine,
                               scheme="safedm")
        legacy_fields = dataclasses.asdict(legacy)
        scheme_fields = dataclasses.asdict(scheme)
        legacy_fields.pop("scheme_stats")
        stats = scheme_fields.pop("scheme_stats")
        assert scheme_fields == legacy_fields
        assert stats["detected"] is False
        assert stats["outputs"][0] == stats["outputs"][1]


class TestAllSchemesTierEquivalence:
    """Fast tier is bit-identical to reference under every scheme."""

    @pytest.mark.parametrize("kind", SCHEME_KINDS)
    def test_fast_matches_reference(self, kind):
        prog = program("bitonic")
        ref = run_redundant(prog, benchmark="bitonic", scheme=kind,
                            engine="reference")
        fast = run_redundant(prog, benchmark="bitonic", scheme=kind,
                             engine="fast")
        assert dataclasses.asdict(fast) == dataclasses.asdict(ref)
        assert ref.scheme == kind
        assert ref.scheme_stats["detected"] is False


class TestSchemeRuns:
    def test_scheme_rejects_resume_and_capture(self):
        prog = program("cosf")
        with pytest.raises(ValueError, match="resume"):
            run_redundant(prog, scheme="tmr", resume_from=object())
        with pytest.raises(ValueError, match="capture"):
            run_redundant(prog, scheme="tmr", capture=object())

    def test_lockstep_clean_run(self):
        prog = program("cosf")
        result = run_redundant(prog, benchmark="cosf",
                               scheme="lockstep")
        assert result.finished
        stats = result.scheme_stats
        assert stats["mismatches"] == 0
        assert stats["compared"] > 0
        assert stats["outputs"][0] == stats["outputs"][1]

    def test_tmr_fault_free_all_agree(self):
        prog = program("cosf")
        result = run_redundant(prog, benchmark="cosf", scheme="tmr")
        stats = result.scheme_stats
        assert stats["voted"] == stats["agreed"]
        assert stats["uncorrectable"] == 0
        assert len(set(stats["outputs"])) == 1
        assert stats["voted_output"] == stats["outputs"][0]

    def test_multipair_runs_two_pairs(self):
        prog = program("cosf")
        result = run_redundant(prog, benchmark="cosf",
                               scheme="multipair")
        stats = result.scheme_stats
        assert stats["pairs"] == [[0, 1], [2, 3]] \
            or stats["pairs"] == [(0, 1), (2, 3)]
        assert len(stats["outputs"]) == 4
        assert len(set(stats["outputs"])) == 1
        assert not any(stats["pair_detected"])

    def test_dme_reaches_same_final_state(self):
        prog = program("cosf")
        plain = run_redundant(prog, benchmark="cosf", scheme="safedm")
        dme = run_redundant(prog, benchmark="cosf", scheme="dme")
        assert dme.finished
        stats = dme.scheme_stats
        assert stats["detected"] is False
        # Trail replica (decorrelated build) computes the same result.
        assert stats["outputs"][0] == stats["outputs"][1]
        assert stats["outputs"][0] == plain.scheme_stats["outputs"][0]

    def test_hardware_cost_ordering(self):
        costs = {kind: build_scheme(kind).hardware_cost()
                 for kind in SCHEME_KINDS}
        assert costs["lockstep"]["total_luts"] \
            < costs["safedm"]["total_luts"] \
            < costs["tmr"]["total_luts"] \
            < costs["multipair"]["total_luts"]
        assert costs["multipair"]["cores"] == 4
        assert costs["tmr"]["cores"] == 3


class TestStateDictRoundTrip:
    def _mid_run(self, kind, cycles=400):
        scheme = build_scheme(kind)
        soc = scheme.build()
        scheme.start(soc, program("cosf"), benchmark="cosf")
        for _ in range(cycles):
            soc.step()
        return scheme, soc

    @pytest.mark.parametrize("kind", ["lockstep", "tmr"])
    def test_round_trip_restores_checker(self, kind):
        scheme, _ = self._mid_run(kind)
        state = scheme.state_dict()
        other = build_scheme(kind)
        other_soc = other.build()
        other.start(other_soc, program("cosf"), benchmark="cosf")
        other.load_state_dict(state)
        assert other.state_dict() == state

    def test_kind_mismatch_rejected(self):
        scheme, _ = self._mid_run("lockstep")
        other = build_scheme("tmr")
        with pytest.raises(ValueError, match="kind"):
            other.load_state_dict(scheme.state_dict())


class TestDMETransform:
    SPEC = SchemeSpec(kind="dme")

    def test_register_map_is_bijection(self):
        mapping = dme_register_map(self.SPEC.dme_rotation)
        assert sorted(mapping) == sorted(mapping.values())
        assert all(reg != mapped for reg, mapped in mapping.items())

    @pytest.mark.parametrize("kernel",
                             ["binarysearch", "cosf", "recursion"])
    def test_cfg_isomorphic(self, kernel):
        base = program(kernel).base
        report = dme_transform_report(kernel, self.SPEC, base)
        assert report.cfg_isomorphic
        assert report.blocks > 0

    def test_rotatable_registers_actually_remapped(self):
        # recursion touches none of the rotatable set, so it remaps 0
        # words; these kernels use saved/temp registers heavily.
        for kernel in ("binarysearch", "cosf"):
            base = program(kernel).base
            report = dme_transform_report(kernel, self.SPEC, base)
            assert report.words_remapped > 0

    def test_unknown_benchmark_raises(self):
        with pytest.raises(DMETransformError):
            decorrelated_program("not-a-kernel", self.SPEC, 0x1_0000)

    def test_text_actually_shifted(self):
        prog = program("cosf")
        trail = decorrelated_program("cosf", self.SPEC, prog.base)
        assert trail.base == prog.base + self.SPEC.dme_text_shift


class TestSchemeMatrix:
    def test_lockstep_catches_every_unmasked_ccf(self):
        """The diversity ≡ 0 control: lockstep coverage is 1.0."""
        row = run_scheme_trials("lockstep", program("cosf"),
                                benchmark="cosf", num_faults=2,
                                stimuli=(0x5EED,))
        assert len(row.trials) == 2
        assert row.silent == 0
        assert row.coverage == 1.0

    def test_matrix_table_renders(self):
        row = run_scheme_trials("safedm", program("cosf"),
                                benchmark="cosf", num_faults=1,
                                stimuli=(0x5EED,))
        table = matrix_table([row])
        assert "safedm" in table
        assert "coverage" in table
        payload = row.to_dict()
        assert payload["trials"] == 1
        assert payload["hardware"]["cores"] == 2


class TestWatchedCores:
    def test_scheme_overrides_watched(self):
        scheme = build_scheme("tmr")
        soc = scheme.build()
        assert soc._watched_indices() == (0, 1, 2)

    def test_default_derives_from_pairs(self):
        from repro.soc.mpsoc import MPSoC
        soc = MPSoC()
        assert soc._watched_indices() == (0, 1)
