"""Functional-semantics tests for the execution unit."""

import pytest

from repro.isa.opcodes import SPECS
from repro.isa.instruction import Instruction
from repro.cpu.exec_unit import (
    branch_taken,
    effective_address,
    execute_alu,
    sign_extend_load,
)

MASK = (1 << 64) - 1


def alu(name, rs1=0, rs2=0, imm=0):
    return execute_alu(Instruction(SPECS[name], rd=1, rs1=2, rs2=3,
                                   imm=imm), rs1 & MASK, rs2 & MASK)


class TestArithmetic:
    def test_add_wraps(self):
        assert alu("add", MASK, 1) == 0

    def test_sub_wraps(self):
        assert alu("sub", 0, 1) == MASK

    def test_addi_negative(self):
        assert alu("addi", 10, imm=-3) == 7

    def test_addw_truncates_and_extends(self):
        assert alu("addw", 0x7FFFFFFF, 1) == 0xFFFFFFFF80000000

    def test_subw(self):
        assert alu("subw", 0, 1) == MASK

    def test_addiw(self):
        assert alu("addiw", 0xFFFFFFFF, imm=1) == 0


class TestLogic:
    def test_xor_or_and(self):
        assert alu("xor", 0b1100, 0b1010) == 0b0110
        assert alu("or", 0b1100, 0b1010) == 0b1110
        assert alu("and", 0b1100, 0b1010) == 0b1000

    def test_immediates(self):
        assert alu("xori", 0, imm=-1) == MASK
        assert alu("ori", 0b01, imm=0b10) == 0b11
        assert alu("andi", MASK, imm=0xF) == 0xF


class TestShifts:
    def test_sll_uses_low_six_bits(self):
        assert alu("sll", 1, 64) == 1
        assert alu("sll", 1, 65) == 2

    def test_srl_logical(self):
        assert alu("srl", MASK, 63) == 1

    def test_sra_arithmetic(self):
        assert alu("sra", MASK, 63) == MASK  # -1 >> 63 == -1

    def test_slli_srli_srai(self):
        assert alu("slli", 1, imm=63) == 1 << 63
        assert alu("srli", 1 << 63, imm=63) == 1
        assert alu("srai", 1 << 63, imm=63) == MASK

    def test_word_shifts(self):
        assert alu("sllw", 1, 31) == 0xFFFFFFFF80000000
        assert alu("srlw", 0x80000000, 31) == 1
        assert alu("sraw", 0x80000000, 31) == MASK
        assert alu("srliw", 0x80000000, imm=31) == 1
        assert alu("sraiw", 0x80000000, imm=31) == MASK


class TestComparisons:
    def test_slt_signed(self):
        assert alu("slt", MASK, 0) == 1  # -1 < 0
        assert alu("slt", 0, MASK) == 0

    def test_sltu_unsigned(self):
        assert alu("sltu", MASK, 0) == 0
        assert alu("sltu", 0, MASK) == 1

    def test_slti_sltiu(self):
        assert alu("slti", MASK, imm=0) == 1
        assert alu("sltiu", 0, imm=-1) == 1  # imm treated unsigned


class TestMultiply:
    def test_mul_wraps(self):
        assert alu("mul", 1 << 63, 2) == 0

    def test_mulh_signed(self):
        assert alu("mulh", MASK, MASK) == 0  # (-1)*(-1) high = 0

    def test_mulhu(self):
        assert alu("mulhu", MASK, MASK) == MASK - 1

    def test_mulhsu(self):
        assert alu("mulhsu", MASK, MASK) == MASK  # -1 * huge

    def test_mulw(self):
        assert alu("mulw", 0x10000, 0x10000) == 0


class TestDivide:
    def test_div_truncates_toward_zero(self):
        assert alu("div", -7 & MASK, 2) == -3 & MASK
        assert alu("div", 7, -2 & MASK) == -3 & MASK

    def test_div_by_zero(self):
        assert alu("div", 42, 0) == MASK
        assert alu("divu", 42, 0) == MASK

    def test_rem_sign_follows_dividend(self):
        assert alu("rem", -7 & MASK, 2) == -1 & MASK
        assert alu("rem", 7, -2 & MASK) == 1

    def test_rem_by_zero_returns_dividend(self):
        assert alu("rem", 42, 0) == 42
        assert alu("remu", 42, 0) == 42

    def test_div_overflow_case(self):
        # most-negative / -1 wraps to itself per the RISC-V spec
        assert alu("div", 1 << 63, MASK) == 1 << 63

    def test_word_division(self):
        assert alu("divw", 7, 2) == 3
        assert alu("divuw", 0xFFFFFFFF, 1) == MASK  # sign-extended
        assert alu("remw", -7 & MASK, 2) == MASK  # -1
        assert alu("divw", 1, 0) == MASK
        assert alu("remuw", 10, 3) == 1


class TestBranches:
    @pytest.mark.parametrize("name,rs1,rs2,expected", [
        ("beq", 5, 5, True), ("beq", 5, 6, False),
        ("bne", 5, 6, True), ("bne", 5, 5, False),
        ("blt", MASK, 0, True), ("blt", 0, MASK, False),
        ("bge", 0, MASK, True), ("bge", MASK, 0, False),
        ("bltu", 0, MASK, True), ("bltu", MASK, 0, False),
        ("bgeu", MASK, 0, True), ("bgeu", 0, MASK, False),
    ])
    def test_branch_conditions(self, name, rs1, rs2, expected):
        instr = Instruction(SPECS[name], rs1=1, rs2=2)
        assert branch_taken(instr, rs1, rs2) is expected


class TestMemoryHelpers:
    def test_effective_address_wraps(self):
        instr = Instruction(SPECS["ld"], rd=1, rs1=2, imm=-8)
        assert effective_address(instr, 4) == (4 - 8) & MASK

    def test_sign_extend_load(self):
        assert sign_extend_load(0xFF, 1, True) == MASK
        assert sign_extend_load(0xFF, 1, False) == 0xFF
        assert sign_extend_load(0x8000, 2, True) == MASK - 0x7FFF
        assert sign_extend_load(0x7FFF, 2, True) == 0x7FFF
        assert sign_extend_load(0xFFFFFFFF, 4, True) == MASK
        assert sign_extend_load(0xFFFFFFFF, 4, False) == 0xFFFFFFFF

    def test_lui(self):
        value = alu("lui", imm=0x12345000)
        assert value == 0x12345000
