"""SoC-level tests: config, loader, MPSoC wiring, APB access."""

import pytest

from repro.core import apb_regs
from repro.isa import assemble
from repro.isa.decoder import decode
from repro.mem.memory import Memory
from repro.soc.config import SocConfig
from repro.soc.loader import LoaderError, build_nop_sled, load_program

from conftest import run_asm_redundant


class TestSocConfig:
    def test_default_layout(self):
        cfg = SocConfig()
        assert cfg.num_cores == 2
        assert cfg.data_bases[0] != cfg.data_bases[1]

    def test_stack_top_alignment(self):
        cfg = SocConfig()
        for core in range(2):
            assert cfg.stack_top(core) % 16 == 0
            assert cfg.stack_top(core) > cfg.data_base(core)

    def test_describe_mentions_components(self):
        text = SocConfig().describe()
        assert "NOEL-V" in text
        assert "AHB" in text
        assert "SafeDM" in text
        assert "L2" in text


class TestLoader:
    def test_load_program(self):
        memory = Memory()
        program = assemble("_start:\n nop\n ebreak\n", base=0x1000)
        load_program(memory, program)
        assert memory.read_word(0x1000) == 0x13

    def test_sled_zero_nops_is_direct_entry(self):
        memory = Memory()
        assert build_nop_sled(memory, 0x2000, 0, entry=0x5000) == \
            (0x5000, 0)

    def test_sled_structure(self):
        memory = Memory()
        start, count = build_nop_sled(memory, 0x2000, 3, entry=0x2100)
        assert start == 0x2000
        assert count == 4  # 3 nops + jal
        for i in range(3):
            assert decode(memory.read_word(0x2000 + 4 * i)).is_nop
        jump = decode(memory.read_word(0x200C))
        assert jump.mnemonic == "jal"
        assert 0x200C + jump.imm == 0x2100

    def test_far_sled_uses_lui_jalr(self):
        memory = Memory()
        _, count = build_nop_sled(memory, 0x2000, 1, entry=0x4000_0000)
        assert count == 3  # 1 nop + lui + jalr
        assert decode(memory.read_word(0x2004)).mnemonic == "lui"
        assert decode(memory.read_word(0x2008)).mnemonic == "jalr"

    def test_negative_nops_rejected(self):
        with pytest.raises(LoaderError):
            build_nop_sled(Memory(), 0x2000, -1, entry=0)


class TestMpsocWiring:
    def test_core_initial_registers(self, soc):
        program = assemble("_start:\n ebreak\n",
                           base=soc.config.text_base)
        soc.load(program)
        soc.start_core(0, program.entry)
        core = soc.cores[0]
        assert core.regfile.read(3) == soc.config.data_base(0)   # gp
        assert core.regfile.read(2) == soc.config.stack_top(0)   # sp
        assert core.regfile.read(4) == 0                          # tp

    def test_start_warms_first_line(self, soc):
        program = assemble("_start:\n ebreak\n",
                           base=soc.config.text_base)
        soc.load(program)
        soc.start_core(0, program.entry)
        assert soc.cores[0].icache.probe(program.entry)

    def test_apb_register_access_through_soc(self):
        soc = run_asm_redundant("_start:\n nop\n ebreak\n")
        cycles = soc.apb_read(apb_regs.CYCLES_LO)
        assert cycles > 0
        assert cycles == soc.safedm.stats.sampled_cycles & 0xFFFFFFFF

    def test_describe(self, soc):
        assert "SafeDM" in soc.describe()

    def test_monitor_gated_after_finish(self):
        soc = run_asm_redundant("_start:\n ebreak\n", max_cycles=500)
        sampled = soc.safedm.stats.sampled_cycles
        # Run extra cycles: the monitor must not keep counting.
        for _ in range(50):
            soc.step()
        assert soc.safedm.stats.sampled_cycles == sampled


class TestRedundantStart:
    SRC = """
_start:
    li t0, 5
loop:
    addi t0, t0, -1
    bnez t0, loop
    sd t0, 0(gp)
    ebreak
"""

    def test_both_cores_execute_same_program(self):
        soc = run_asm_redundant(self.SRC)
        cfg = soc.config
        assert soc.memory.read(cfg.data_bases[0], 8) == 0
        assert soc.memory.read(cfg.data_bases[1], 8) == 0
        assert soc.cores[0].stats.committed == \
            soc.cores[1].stats.committed

    def test_staggered_core_commits_extra_sled_instructions(self):
        plain = run_asm_redundant(self.SRC)
        staggered = run_asm_redundant(self.SRC, stagger_nops=50)
        extra = (staggered.cores[1].stats.committed
                 - plain.cores[1].stats.committed)
        assert extra == 52  # 50 nops + lui + jalr (far jump form)

    def test_diff_preload_compensates_sled(self):
        """Program-level staggering nets to zero once both cores have
        run the whole program (reconstructed from total commits, since
        the monitored window ends when the first core finishes)."""
        soc = run_asm_redundant(self.SRC, stagger_nops=50)
        sled = 52
        assert (sled + soc.cores[0].stats.committed
                - soc.cores[1].stats.committed) == 0
