"""Abstract-interpretation layer: strided intervals, solver, domains.

The soundness style is concretization-based: a :class:`StridedInterval`
denotes the set ``{lo, lo+stride, ..., hi}``, and every abstract
operation must over-approximate the concrete one on members.  The
hypothesis properties below check exactly that; the deterministic tests
pin the solver behaviours the lint rules rely on (diamond joins, loop
widening, proven branch directions, masking-liveness specifics).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.lint import build_cfg
from repro.lint.absint import (
    ALL_REGISTERS,
    MASK64,
    RESULT_REGISTER,
    IntervalDomain,
    MaskingLiveness,
    StridedInterval,
    reverse_postorder,
    solve_absint,
)
from repro.lint.cfg import BasicBlock
from repro.lint.dataflow import Liveness, ReachingDefinitions, solve
from repro.workloads import all_names, program

BASE = 0x0001_0000


def member(value, si):
    """Concrete membership in a strided interval's denotation."""
    if not (si.lo <= value <= si.hi):
        return False
    if si.stride == 0:
        return value == si.lo
    return (value - si.lo) % si.stride == 0


def members(si, limit=512):
    if si.stride == 0:
        return [si.lo]
    out = list(range(si.lo, si.hi + 1, si.stride))
    return out[:limit]


@st.composite
def intervals(draw):
    lo = draw(st.integers(min_value=0, max_value=1 << 20))
    stride = draw(st.integers(min_value=0, max_value=64))
    n = draw(st.integers(min_value=0, max_value=50))
    if stride == 0 or n == 0:
        return StridedInterval(lo, lo, 0)
    return StridedInterval(lo, lo + stride * n, stride)


class TestStridedInterval:
    @given(intervals(), intervals())
    @settings(max_examples=200, deadline=None)
    def test_join_is_an_upper_bound(self, a, b):
        joined = a.join(b)
        for v in members(a) + members(b):
            assert member(v, joined)

    @given(intervals(), intervals())
    @settings(max_examples=200, deadline=None)
    def test_widen_is_an_upper_bound(self, a, b):
        widened = a.widen(b)
        for v in members(a) + members(b):
            assert member(v, widened)

    @given(intervals(), intervals())
    @settings(max_examples=100, deadline=None)
    def test_widening_chains_terminate(self, a, b):
        state = a
        for step in range(80):
            nxt = state.widen(state.join(b))
            if nxt == state:
                break
            state = nxt
        else:
            pytest.fail("widening did not stabilize: %r vs %r" % (a, b))

    @given(intervals(), intervals())
    @settings(max_examples=150, deadline=None)
    def test_add_sub_soundness(self, a, b):
        added = a.add(b)
        subbed = a.sub(b)
        for x in members(a, 24):
            for y in members(b, 24):
                assert member((x + y) & MASK64, added)
                assert member((x - y) & MASK64, subbed)

    @given(intervals(), st.integers(min_value=-4096, max_value=4096))
    @settings(max_examples=150, deadline=None)
    def test_add_const_soundness(self, a, imm):
        shifted = a.add_const(imm)
        for x in members(a):
            assert member((x + imm) & MASK64, shifted)

    @given(intervals(), st.integers(min_value=0, max_value=8))
    @settings(max_examples=150, deadline=None)
    def test_shift_left_soundness(self, a, amount):
        shifted = a.shift_left(amount)
        for x in members(a):
            assert member((x << amount) & MASK64, shifted)

    @given(intervals(), st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=200, deadline=None)
    def test_residue_holds_for_every_member(self, a, modulus):
        residue = a.residue(modulus)
        if residue is not None:
            for v in members(a):
                assert v % modulus == residue

    @given(intervals(), intervals())
    @settings(max_examples=200, deadline=None)
    def test_never_equals_means_disjoint(self, a, b):
        if a.never_equals(b):
            assert not set(members(a)) & set(members(b))

    @given(intervals())
    @settings(max_examples=200, deadline=None)
    def test_signed_range_covers_members(self, a):
        rng = a.signed_range()
        if rng is not None:
            lo, hi = rng
            for v in members(a):
                signed = v - (1 << 64) if v >= 1 << 63 else v
                assert lo <= signed <= hi

    def test_overflow_keeps_power_of_two_alignment(self):
        # Wrapping mod 2^64 preserves congruence mod 8 (8 divides
        # 2^64), so an overflowing add keeps the alignment fact.
        huge = StridedInterval.aligned(8)
        bumped = huge.add_const(8)
        assert bumped.residue(8) == 0
        offset = huge.add_const(12)
        assert offset.residue(8) == 4
        # Odd strides don't survive a wrap: 3 does not divide 2^64.
        odd = StridedInterval.aligned(3)
        assert odd.add_const(3).is_top
        # Constants fold exactly through the wrap.
        assert StridedInterval.const(MASK64).add_const(2) \
            == StridedInterval.const(1)

    def test_invariants(self):
        c = StridedInterval.const(7)
        assert c.is_const and c.stride == 0
        top = StridedInterval.top()
        assert top.is_top
        aligned = StridedInterval.aligned(4096)
        assert aligned.residue(8) == 0
        assert aligned.residue(4096) == 0


class TestReversePostorder:
    @pytest.mark.parametrize("name", sorted(all_names())[:6])
    def test_covers_all_blocks_entry_first(self, name):
        cfg = build_cfg(program(name))
        order = reverse_postorder(cfg)
        assert [b.start for b in order][0] == cfg.entry
        assert {b.start for b in order} == \
            {b.start for b in cfg.all_blocks()}

    def test_deterministic(self):
        cfg = build_cfg(program("fft"))
        one = [b.start for b in reverse_postorder(cfg)]
        two = [b.start for b in reverse_postorder(cfg)]
        assert one == two

    def test_dataflow_fixed_point_unchanged_by_seeding(self):
        # RPO seeding is a convergence-speed change only: the least
        # fixed point is seed-order independent.
        cfg = build_cfg(program("binarysearch"))
        for problem in (ReachingDefinitions(), Liveness()):
            one = solve(cfg, problem)
            two = solve(cfg, problem)
            assert one.block_in == two.block_in
            assert one.block_out == two.block_out


def interval_points(source):
    cfg = build_cfg(assemble(source, base=BASE))
    return cfg, solve_absint(cfg, IntervalDomain()).point_states()


class TestIntervalDomain:
    def test_diamond_join_keeps_common_constant(self):
        # Both arms compute t2 == 6; the join at merge must keep it.
        cfg, points = interval_points("""
_start:
    li t0, 5
    li t1, 7
    beq tp, x0, other
    addi t2, t0, 1
    j merge
other:
    addi t2, t1, -1
merge:
    sd t2, 0(gp)
    ebreak
""")
        sd_pc = max(pc for pc, i in cfg.instrs.items()
                    if i.mnemonic == "sd")
        state = points[sd_pc]
        assert state[7] == StridedInterval.const(6)  # t2 = x7

    def test_loop_counter_widens_to_alignment(self):
        # t0 starts at 0 and moves in steps of 8: after widening the
        # header state still proves t0 % 8 == 0 (and never reaches
        # top, so the analysis terminated by widening, not by bail).
        cfg, points = interval_points("""
_start:
    li t0, 0
    li t1, 800
loop:
    addi t0, t0, 8
    blt t0, t1, loop
    sd t0, 0(gp)
    ebreak
""")
        addi_pc = next(pc for pc, i in cfg.instrs.items()
                       if i.mnemonic == "addi" and i.rd == 5
                       and i.rs1 == 5)
        state = points[addi_pc]
        assert state[5].residue(8) == 0

    def test_gp_alignment_flows_through_address_arithmetic(self):
        cfg, points = interval_points("""
_start:
    addi t0, gp, 16
    slli t1, tp, 3
    add t2, t0, t1
    sd x0, 0(t2)
    ebreak
""")
        sd_pc = next(pc for pc, i in cfg.instrs.items()
                     if i.mnemonic == "sd")
        state = points[sd_pc]
        # gp + 16 + 8*tp is provably 8-aligned whatever tp is.
        assert state[7].residue(8) == 0

    def test_constant_folding_matches_concrete_alu(self):
        from repro.cpu.exec_unit import execute_alu
        cfg, points = interval_points("""
_start:
    li t0, 0x1234
    li t1, 0x0ff0
    xor t2, t0, t1
    sd t2, 0(gp)
    ebreak
""")
        xor_pc = next(pc for pc, i in cfg.instrs.items()
                      if i.mnemonic == "xor")
        sd_pc = next(pc for pc, i in cfg.instrs.items()
                     if i.mnemonic == "sd")
        instr = cfg.instrs[xor_pc]
        assert points[sd_pc][7] == StridedInterval.const(
            execute_alu(instr, 0x1234, 0x0FF0))

    def test_branch_decision_on_constants(self):
        cfg, points = interval_points("""
_start:
    li t0, 3
    beq t0, x0, away
    bne t0, x0, away
away:
    ebreak
""")
        beq_pc = next(pc for pc, i in cfg.instrs.items()
                      if i.mnemonic == "beq")
        bne_pc = next(pc for pc, i in cfg.instrs.items()
                      if i.mnemonic == "bne")
        assert IntervalDomain.branch_decision(
            points[beq_pc], cfg.instrs[beq_pc]) is False
        assert IntervalDomain.branch_decision(
            points[bne_pc], cfg.instrs[bne_pc]) is True

    def test_branch_decision_undecidable_returns_none(self):
        cfg, points = interval_points("""
_start:
    beq tp, x0, away
away:
    ebreak
""")
        beq_pc = next(pc for pc, i in cfg.instrs.items()
                      if i.mnemonic == "beq")
        assert IntervalDomain.branch_decision(
            points[beq_pc], cfg.instrs[beq_pc]) is None

    def test_unreachable_points_have_no_state(self):
        cfg, points = interval_points("""
_start:
    j done
    addi t0, x0, 1
done:
    ebreak
""")
        addi_pc = next(pc for pc, i in cfg.instrs.items()
                       if i.mnemonic == "addi" and i.rd == 5)
        assert points[addi_pc] is None


class TestMaskingLiveness:
    def live_in(self, source):
        cfg = build_cfg(assemble(source, base=BASE))
        result = solve_absint(cfg, MaskingLiveness(cfg))
        return cfg, result.point_states()

    def test_result_register_live_to_the_halt(self):
        cfg, points = self.live_in("""
_start:
    li s0, 42
    ebreak
""")
        for pc in cfg.instrs:
            if cfg.instrs[pc].mnemonic == "ebreak":
                assert RESULT_REGISTER in points[pc]

    def test_dead_after_last_read(self):
        cfg, points = self.live_in("""
_start:
    li t0, 3
    sd t0, 0(gp)
    ebreak
""")
        sd_pc = next(pc for pc, i in cfg.instrs.items()
                     if i.mnemonic == "sd")
        ebreak_pc = next(pc for pc, i in cfg.instrs.items()
                         if i.mnemonic == "ebreak")
        assert 5 in points[sd_pc]          # the sd still reads t0
        assert 5 not in points[ebreak_pc]  # dead once it has issued

    def test_halt_counts_paired_slot_reads(self):
        # The dual-issue front end can pair the halt with the next
        # sequential word, which issues (and reads t0) in the same
        # group — so t0 must stay live at the ebreak point even though
        # the sd is CFG-unreachable.
        cfg, points = self.live_in("""
_start:
    li t0, 3
    ebreak
    sd t0, 0(gp)
""")
        ebreak_pc = next(pc for pc, i in cfg.instrs.items()
                         if i.mnemonic == "ebreak")
        assert 5 in points[ebreak_pc]

    def test_unknown_target_forces_all_registers(self):
        cfg = build_cfg(program("countnegative"))
        domain = MaskingLiveness(cfg)
        block = BasicBlock(start=0x123, has_unknown_target=True)
        assert domain.meet_extra(cfg, block) == ALL_REGISTERS
        assert domain.meet_extra(cfg, cfg.entry_block) is None
