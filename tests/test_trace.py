"""Trace subsystem tests: VCD writer, pipeline tracer, signature trace."""

import pytest

from repro.soc.mpsoc import MPSoC
from repro.trace.pipeline_trace import trace_run
from repro.trace.signature_trace import (
    SignatureSample,
    SignatureTrace,
    capture_signature_trace,
)
from repro.trace.vcd import VcdWriter, monitor_vcd
from repro.workloads import program


class TestVcdWriter:
    def test_header_and_vars(self):
        vcd = VcdWriter(module="m")
        vcd.add_signal("clk", 1)
        vcd.add_signal("bus", 8)
        text = vcd.render()
        assert "$scope module m $end" in text
        assert "$var wire 1" in text
        assert "$var wire 8" in text
        assert "$enddefinitions $end" in text

    def test_changes_rendered_in_time_order(self):
        vcd = VcdWriter()
        vcd.add_signal("a", 1)
        vcd.change(5, "a", 1)
        vcd.change(2, "a", 0)  # recorded later but earlier time
        text = vcd.render()
        assert text.index("#2") < text.index("#5")

    def test_deduplicates_unchanged_values(self):
        vcd = VcdWriter()
        vcd.add_signal("a", 1)
        vcd.change(0, "a", 1)
        vcd.change(1, "a", 1)  # no change
        vcd.change(2, "a", 0)
        assert vcd.render().count("\n1") + vcd.render().count("\n0") >= 1
        assert len(vcd._changes) == 2

    def test_vector_rendering(self):
        vcd = VcdWriter()
        vcd.add_signal("bus", 8)
        vcd.change(0, "bus", 0xA5)
        assert "b10100101" in vcd.render()

    def test_duplicate_signal_rejected(self):
        vcd = VcdWriter()
        vcd.add_signal("a")
        with pytest.raises(ValueError):
            vcd.add_signal("a")

    def test_unknown_signal_rejected(self):
        vcd = VcdWriter()
        with pytest.raises(KeyError):
            vcd.change(0, "ghost", 1)

    def test_save(self, tmp_path):
        vcd = VcdWriter()
        vcd.add_signal("a")
        vcd.change(0, "a", 1)
        path = tmp_path / "out.vcd"
        vcd.save(str(path))
        assert path.read_text().startswith("$date")


class TestMonitorVcd:
    def test_full_run_capture(self):
        soc = MPSoC()
        soc.start_redundant(program("countnegative"))
        vcd = monitor_vcd(soc)
        text = vcd.render()
        assert "no_diversity" in text
        assert "staggering" in text
        assert "#0" in text or "#1" in text


class TestPipelineTracer:
    def test_trace_lines_have_all_stages(self):
        soc = MPSoC()
        soc.start_redundant(program("countnegative"))
        tracer = trace_run(soc, max_cycles=50)
        text = tracer.render(last=5)
        for stage in ("FE", "DE", "RA", "EX", "ME", "XC", "WB"):
            assert stage + ":" in text

    def test_window_bounds_memory(self):
        soc = MPSoC()
        soc.start_redundant(program("countnegative"))
        tracer = trace_run(soc, max_cycles=200, window=10)
        assert len(tracer.lines) <= 10 * 2  # two cores

    def test_around_selects_radius(self):
        soc = MPSoC()
        soc.start_redundant(program("countnegative"))
        tracer = trace_run(soc, max_cycles=100)
        text = tracer.around(50, radius=2)
        assert "c48" in text and "c52" in text
        assert "c55" not in text

    def test_hold_flag_rendered(self):
        soc = MPSoC()
        soc.start_redundant(program("countnegative"))
        tracer = trace_run(soc, max_cycles=300)
        assert any(line.hold for line in tracer.lines)


class TestSignatureTrace:
    def test_capture_and_csv(self):
        soc = MPSoC()
        soc.start_redundant(program("countnegative"))
        trace = capture_signature_trace(soc, max_cycles=500)
        assert len(trace.samples) == 500
        csv = trace.to_csv()
        assert csv.splitlines()[0] == \
            "cycle,data_diversity,instruction_diversity,diversity," \
            "staggering"
        assert len(csv.splitlines()) == 501

    def test_episode_extraction(self):
        trace = SignatureTrace()
        # diversity pattern: D D n n n D n D
        pattern = [True, True, False, False, False, True, False, True]
        for cycle, diverse in enumerate(pattern):
            trace.append(SignatureSample(cycle=cycle,
                                         data_diversity=diverse,
                                         instruction_diversity=False,
                                         staggering=0))
        episodes = trace.no_diversity_episodes()
        assert episodes == [(2, 3), (6, 1)]

    def test_open_episode_at_end(self):
        trace = SignatureTrace()
        for cycle in range(3):
            trace.append(SignatureSample(cycle=cycle,
                                         data_diversity=False,
                                         instruction_diversity=False,
                                         staggering=0))
        assert trace.no_diversity_episodes() == [(0, 3)]

    def test_save(self, tmp_path):
        soc = MPSoC()
        soc.start_redundant(program("countnegative"))
        trace = capture_signature_trace(soc, max_cycles=10)
        path = tmp_path / "sig.csv"
        trace.save(str(path))
        assert path.read_text().startswith("cycle,")
