"""Assembler unit tests: syntax, labels, pseudo-instructions, data."""

import pytest

from repro.isa import assemble
from repro.isa.assembler import AssemblerError
from repro.isa.decoder import decode


def words_of(program):
    return [w for _, w in program.words()]


def decoded(program):
    return [decode(w) for _, w in program.words()]


class TestBasicSyntax:
    def test_empty_source(self):
        program = assemble("")
        assert program.size == 0

    def test_comments_ignored(self):
        program = assemble("""
            # full-line comment
            addi a0, a0, 1   # trailing comment
            addi a0, a0, 2   ; semicolon comment
        """)
        assert len(words_of(program)) == 2

    def test_label_addresses(self):
        program = assemble("""
_start:
    addi a0, a0, 1
mid:
    addi a0, a0, 2
end:
""", base=0x1000)
        assert program.symbol("_start") == 0x1000
        assert program.symbol("mid") == 0x1004
        assert program.symbol("end") == 0x1008

    def test_entry_point(self):
        program = assemble("nop\n_start:\n  nop\n", base=0x100)
        assert program.entry == 0x104

    def test_entry_defaults_to_base(self):
        program = assemble("nop\n", base=0x200)
        assert program.entry == 0x200

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError) as exc:
            assemble("a:\n nop\na:\n nop\n")
        message = str(exc.value)
        assert "'a'" in message
        assert "line 3" in message                 # second definition
        assert "first defined at line 1" in message
        assert exc.value.lineno == 3

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate a0, a1\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere\n")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as exc:
            assemble("nop\nnop\nbadop x0\n")
        assert "line 3" in str(exc.value)


class TestBranchesAndJumps:
    def test_backward_branch_offset(self):
        program = assemble("""
loop:
    addi a0, a0, -1
    bnez a0, loop
""", base=0)
        branch = decoded(program)[1]
        assert branch.mnemonic == "bne"
        assert branch.imm == -4

    def test_forward_branch_offset(self):
        program = assemble("""
    beqz a0, skip
    nop
skip:
""", base=0)
        branch = decoded(program)[0]
        assert branch.imm == 8

    def test_call_and_ret(self):
        program = assemble("""
_start:
    call fn
    ebreak
fn:
    ret
""", base=0)
        instrs = decoded(program)
        assert instrs[0].mnemonic == "jal"
        assert instrs[0].rd == 1
        assert instrs[0].imm == 8
        assert instrs[2].mnemonic == "jalr"
        assert instrs[2].rd == 0
        assert instrs[2].rs1 == 1


class TestLi:
    @pytest.mark.parametrize("value", [
        0, 1, -1, 2047, -2048, 2048, 0x12345, -0x12345,
        0x7FFFFFFF, -0x80000000, 0x123456789, 0x123456789ABCDEF0,
        -0x123456789ABCDEF0, (1 << 63) - 1, -(1 << 63),
    ])
    def test_li_values(self, value):
        program = assemble("li a0, %d\nebreak\n" % value, base=0)
        # Interpret the expansion to verify the materialised constant.
        reg = 0
        for instr in decoded(program):
            if instr.mnemonic == "ebreak":
                break
            from repro.cpu.exec_unit import execute_alu
            reg = execute_alu(instr, reg, 0)
        expected = value & ((1 << 64) - 1)
        assert reg == expected

    def test_li_hex_and_equ(self):
        program = assemble(".equ FOO, 0x40\nli a0, FOO\n", base=0)
        instr = decoded(program)[0]
        assert instr.imm == 0x40


class TestPseudoInstructions:
    def test_nop_encoding(self):
        program = assemble("nop\n", base=0)
        assert words_of(program) == [0x00000013]

    def test_mv(self):
        instr = decoded(assemble("mv a0, a1\n"))[0]
        assert instr.mnemonic == "addi" and instr.imm == 0

    def test_not_neg(self):
        instrs = decoded(assemble("not a0, a1\nneg a2, a3\n"))
        assert instrs[0].mnemonic == "xori" and instrs[0].imm == -1
        assert instrs[1].mnemonic == "sub" and instrs[1].rs1 == 0

    def test_seqz_snez(self):
        instrs = decoded(assemble("seqz a0, a1\nsnez a2, a3\n"))
        assert instrs[0].mnemonic == "sltiu" and instrs[0].imm == 1
        assert instrs[1].mnemonic == "sltu" and instrs[1].rs1 == 0

    def test_branch_aliases_swap_operands(self):
        instrs = decoded(assemble("""
t:
    ble a0, a1, t
    bgt a0, a1, t
    bleu a0, a1, t
    bgtu a0, a1, t
"""))
        assert [i.mnemonic for i in instrs] == ["bge", "blt", "bgeu",
                                                "bltu"]
        assert instrs[0].rs1 == 11 and instrs[0].rs2 == 10

    def test_la_materialises_address(self):
        program = assemble("""
_start:
    la a0, table
    ebreak
table:
    .dword 42
""", base=0x10000)
        from repro.cpu.exec_unit import execute_alu
        reg = 0
        for _, word in list(program.words())[:2]:  # lui + addi only
            instr = decode(word)
            reg = execute_alu(instr, reg, 0)
        assert reg == program.symbol("table")


class TestDirectives:
    def test_word_and_dword(self):
        program = assemble(".word 1, 2\n.dword 3\n", base=0)
        blob = program.image[0]
        assert blob[:4] == (1).to_bytes(4, "little")
        assert blob[4:8] == (2).to_bytes(4, "little")
        assert blob[8:16] == (3).to_bytes(8, "little")

    def test_space(self):
        program = assemble("nop\n.space 12\nnop\n", base=0)
        assert program.size == 4 + 12 + 4

    def test_align(self):
        program = assemble(".byte 1\n.align 3\nmark:\n nop\n", base=0)
        assert program.symbol("mark") == 8

    def test_equ_arithmetic(self):
        program = assemble("""
.equ N, 10
.equ SIZE, N*8+4
li a0, SIZE
""", base=0)
        assert decoded(program)[0].imm == 84

    def test_equ_in_memory_offset(self):
        program = assemble(".equ OFF, 16\nld a0, OFF(sp)\n", base=0)
        assert decoded(program)[0].imm == 16

    def test_negative_dword(self):
        program = assemble(".dword -1\n", base=0)
        assert program.image[0] == b"\xff" * 8

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError):
            assemble(".bogus 1\n")


class TestDebugInfo:
    def test_line_map_tracks_source_lines(self):
        program = assemble("_start:\n    nop\n    nop\n", base=0x100)
        assert program.debug.line_map == {0x100: 2, 0x104: 3}

    def test_pseudo_interiors_mark_expansion_tails(self):
        program = assemble("li a0, 0x12345\nebreak\n", base=0)
        # lui at 0, addiw (interior) at 4, ebreak at 8.
        assert program.debug.pseudo_interiors == {4}
        assert program.debug.line_map[4] == 1

    def test_la_interior(self):
        program = assemble("""
_start:
    la a0, spot
    ebreak
spot:
""", base=0)
        assert program.debug.pseudo_interiors == {4}

    def test_data_addresses_cover_directives(self):
        program = assemble("nop\n.dword 7\n.word 9\n", base=0)
        assert program.debug.data_addresses == {4, 8, 12}
        assert 0 in program.debug.line_map

    def test_single_word_statements_have_no_interiors(self):
        program = assemble("addi a0, a0, 1\nmv a1, a0\n", base=0)
        assert program.debug.pseudo_interiors == frozenset()


class TestProgramModel:
    def test_size_and_end(self):
        program = assemble("nop\nnop\n.dword 0\n", base=0x100)
        assert program.size == 16
        assert program.end() == 0x110

    def test_words_are_address_ordered(self):
        program = assemble("nop\nnop\nnop\n", base=0x40)
        addresses = [a for a, _ in program.words()]
        assert addresses == [0x40, 0x44, 0x48]
