"""Dataflow solver tests: reaching definitions and liveness."""

from repro.isa import assemble
from repro.lint import Liveness, ReachingDefinitions, build_cfg, solve
from repro.lint.dataflow import RUNTIME, RUNTIME_INITIALIZED, UNINIT


def solved(source, problem, base=0x1000):
    cfg = build_cfg(assemble(source, base=base))
    return cfg, solve(cfg, problem)


def state_at(result, cfg, pc):
    """Per-instruction state (before for forward, after for backward)."""
    for block in cfg.blocks():
        for spc, _, state in result.states(block):
            if spc == pc:
                return state
    raise AssertionError("pc %#x not found" % pc)


class TestReachingDefinitions:
    def test_entry_boundary(self):
        cfg, result = solved("_start:\n    ebreak\n",
                             ReachingDefinitions())
        entry_in = result.block_in[cfg.entry]
        for reg in range(32):
            expected = (RUNTIME if reg in RUNTIME_INITIALIZED
                        else UNINIT)
            assert (expected, reg) in entry_in

    def test_definition_kills_uninit(self):
        cfg, result = solved("""
_start:
    addi t0, x0, 7
    add t1, t0, t0
    ebreak
""", ReachingDefinitions())
        add_pc = cfg.entry + 4
        state = state_at(result, cfg, add_pc)
        assert (UNINIT, 5) not in state       # t0 defined at entry+0
        assert (cfg.entry, 5) in state

    def test_join_keeps_both_paths(self):
        cfg, result = solved("""
_start:
    beqz a0, other
    addi t0, x0, 1
    j join
other:
    addi t0, x0, 2
join:
    add t1, t0, t0
    ebreak
""", ReachingDefinitions())
        join = cfg.program.symbol("join")
        state = state_at(result, cfg, join)
        defs = {site for site, reg in state if reg == 5}
        assert len(defs) == 2                 # both addi defs reach
        assert UNINIT not in defs

    def test_uninit_survives_one_sided_init(self):
        cfg, result = solved("""
_start:
    beqz a0, join
    addi t0, x0, 1
join:
    add t1, t0, t0
    ebreak
""", ReachingDefinitions())
        join = cfg.program.symbol("join")
        assert (UNINIT, 5) in state_at(result, cfg, join)


class TestLiveness:
    def test_store_keeps_register_live(self):
        cfg, result = solved("""
_start:
    addi t0, x0, 9
    sd t0, 0(gp)
    ebreak
""", Liveness())
        assert 5 in state_at(result, cfg, cfg.entry)  # live after addi

    def test_overwrite_kills_liveness(self):
        cfg, result = solved("""
_start:
    addi t0, x0, 1
    addi t0, x0, 2
    sd t0, 0(gp)
    ebreak
""", Liveness())
        assert 5 not in state_at(result, cfg, cfg.entry)

    def test_loop_carried_liveness(self):
        cfg, result = solved("""
_start:
    addi t0, x0, 8
loop:
    addi t0, t0, -1
    bnez t0, loop
    ebreak
""", Liveness())
        loop = cfg.program.symbol("loop")
        # t0 is live around the back edge.
        assert 5 in result.block_in[loop]
        assert 5 in state_at(result, cfg, cfg.entry)

    def test_nothing_live_after_halt(self):
        cfg, result = solved("_start:\n    ebreak\n", Liveness())
        assert result.block_out[cfg.entry] == frozenset()

    def test_x0_never_live(self):
        cfg, result = solved("""
_start:
    add t0, x0, x0
    sd t0, 0(gp)
    ebreak
""", Liveness())
        for block in cfg.blocks():
            assert 0 not in result.block_in[block.start]
            assert 0 not in result.block_out[block.start]
