"""Seeded-bug regression: every diagnostic code fires, suppression works.

Each snippet plants exactly one instance of its target defect; the test
asserts the target code fires exactly once so a rule can neither go
silent nor start double-reporting without failing here.
"""

import pytest

from repro.lint import RULES, all_rules, lint_source

#: code -> deliberately broken snippet triggering that code exactly once.
SEEDED = {
    # a1 is read but never written on the path from _start.
    "L001": """
_start:
    add a0, a1, x0
    sd a0, 0(gp)
    ebreak
""",
    # The first li's value is overwritten before any read.
    "L002": """
_start:
    li t0, 5
    li t0, 7
    sd t0, 0(gp)
    ebreak
""",
    # A real computation discarded into x0 (not the canonical nop).
    "L003": """
_start:
    add x0, gp, gp
    ebreak
""",
    # The addi after the unconditional jump can never execute.
    "L004": """
_start:
    j done
    addi t0, x0, 1
done:
    ebreak
""",
    # Branch lands 0x200 bytes past the end of the image.
    "L005": """
_start:
    beq x0, x0, 0x200
    ebreak
""",
    # Branch offset -4 lands on the addiw half of the li expansion.
    "L006": """
_start:
    li t0, 0x12345
    bne t0, x0, -4
    ebreak
""",
    # 8-byte load at a 4-aligned-only offset from gp.
    "L007": """
_start:
    ld t0, 4(gp)
    sd t0, 8(gp)
    ebreak
""",
    # Kernel convention: gp (the data base) must never move.
    "L008": """
_start:
    addi gp, gp, 8
    ebreak
""",
    # The loop has no exit edge; the ebreak is past an infinite loop.
    "L009": """
_start:
loop:
    j loop
    ebreak
""",
    # t0 is the constant 3, so the branch direction is proven.
    "L010": """
_start:
    li t0, 3
    beq t0, x0, skip
    sd t0, 0(gp)
skip:
    ebreak
""",
    # t0 == gp + 4 (gp is 4096-aligned), so the ld address is
    # provably 6 mod 8.  rs1 is a computed base, out of L007's scope.
    "L011": """
_start:
    addi t0, gp, 4
    ld a0, 2(t0)
    sd a0, 0(gp)
    ebreak
""",
    # The only exit edge is the beq on constant-1 t0: never taken, so
    # the loop is proven infinite (also fires L010 on the branch).
    "L012": """
_start:
    li t0, 1
    li t1, 0
loop:
    addi t1, t1, 1
    beq t0, x0, done
    j loop
done:
    ebreak
""",
    # t0 is written once and dead at every point but the sd read; the
    # prover reports its dead windows (prove_masking runs only here).
    "L013": """
_start:
    li t0, 3
    sd t0, 0(gp)
    ebreak
""",
}

#: Codes whose rule only runs under ``prove_masking=True``.
PROVE_MASKING_CODES = frozenset({"L013"})


def lint_seeded(code, **kwargs):
    return lint_source(SEEDED[code], name="seeded-%s" % code,
                       prove_masking=code in PROVE_MASKING_CODES,
                       **kwargs)


class TestSeededBugs:
    @pytest.mark.parametrize("code", sorted(SEEDED))
    def test_code_fires_exactly_once(self, code):
        report = lint_seeded(code)
        fired = [d for d in report.diagnostics if d.code == code]
        assert len(fired) == 1, (
            "%s fired %d times: %r" % (code, len(fired),
                                       report.diagnostics))
        diag = fired[0]
        assert diag.severity == RULES[code].severity
        assert diag.pc is not None
        assert diag.lineno is not None

    def test_every_registered_code_is_seeded(self):
        assert {rule.code for rule in all_rules()} == set(SEEDED)

    def test_clean_program_has_no_findings(self):
        report = lint_source("""
_start:
    li t0, 3
    li t1, 4
    mul t0, t0, t1
    sd t0, 0(gp)
    ebreak
""")
        assert report.diagnostics == []
        assert report.ok

    def test_error_severity_fails_report(self):
        report = lint_source(SEEDED["L008"])
        assert not report.ok

    def test_warning_only_report_is_ok(self):
        report = lint_source(SEEDED["L002"])
        assert report.ok
        assert len(report.warnings) == 1


class TestSuppression:
    @pytest.mark.parametrize("code", sorted(SEEDED))
    def test_every_rule_honors_line_scoped_disable(self, code):
        """Property: for every registered code, adding the disable
        comment to exactly the line a finding is attributed to moves
        that finding (and only it) to the suppressed list."""
        baseline = lint_seeded(code)
        fired = [d for d in baseline.diagnostics if d.code == code]
        assert len(fired) == 1
        lineno = fired[0].lineno
        lines = SEEDED[code].splitlines()
        lines[lineno - 1] += "   # lint: disable=%s" % code
        report = lint_source(
            "\n".join(lines), name="suppressed-%s" % code,
            prove_masking=code in PROVE_MASKING_CODES)
        assert code not in [d.code for d in report.diagnostics]
        assert [d.code for d in report.suppressed] == [code]
        # Findings of other codes (if any) are untouched.
        assert sorted(d.code for d in report.diagnostics) == sorted(
            d.code for d in baseline.diagnostics if d.code != code)

    def test_disable_comment_suppresses(self):
        report = lint_source("""
_start:
    li t0, 5   # lint: disable=L002
    li t0, 7
    sd t0, 0(gp)
    ebreak
""")
        assert report.diagnostics == []
        assert [d.code for d in report.suppressed] == ["L002"]

    def test_disable_is_line_scoped(self):
        report = lint_source("""
_start:
    li t0, 5
    li t0, 7   # lint: disable=L002
    sd t0, 0(gp)
    ebreak
""")
        # The dead store is on the *first* li; the comment on the
        # second line suppresses nothing.
        assert [d.code for d in report.diagnostics] == ["L002"]
        assert report.suppressed == []
        assert report.diagnostics[0].lineno == 3

    def test_disable_list(self):
        report = lint_source("""
_start:
    ld t0, 4(gp)   # lint: disable=L007, L002
    sd t0, 8(gp)
    ebreak
""")
        assert report.diagnostics == []
        assert {d.code for d in report.suppressed} == {"L007"}

    def test_other_codes_not_suppressed(self):
        report = lint_source("""
_start:
    addi gp, gp, 8   # lint: disable=L001
    ebreak
""")
        # The gp clobber (and its dead store) survive: the comment
        # names a different code.
        assert [d.code for d in report.diagnostics] == ["L008", "L002"]
        assert report.suppressed == []


class TestReportShape:
    def test_to_dict_round_trips_through_json(self):
        import json
        report = lint_source(SEEDED["L007"], name="shape")
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["name"] == "shape"
        assert doc["ok"] is False
        assert doc["blocks"] >= 1
        codes = [d["code"] for d in doc["diagnostics"]]
        assert "L007" in codes

    def test_errors_sort_before_warnings(self):
        report = lint_source("""
_start:
    li t0, 5
    li t0, 7
    addi gp, gp, 8
    sd t0, 0(gp)
    ebreak
""")
        codes = [d.severity for d in report.diagnostics]
        assert codes == sorted(codes, key=lambda s: s != "error")

    def test_rule_registry_is_stable(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == sorted(codes)
        assert codes[0] == "L001"
        for rule in all_rules():
            assert rule.slug
            assert rule.description
