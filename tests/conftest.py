"""Shared fixtures and helpers for the SafeDM reproduction test suite."""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.isa import assemble
from repro.soc.config import SocConfig
from repro.soc.mpsoc import MPSoC
from repro.workloads import program as workload_program
from repro.workloads import workload


MASK64 = (1 << 64) - 1


@lru_cache(maxsize=64)
def run_workload_cached(name: str, stagger_nops: int = 0,
                        late_core: int = 1):
    """Run a workload redundantly once and cache the interesting state.

    Returns a dict snapshot (not the SoC itself) so cached results are
    immutable across tests.
    """
    soc = MPSoC()
    prog = workload_program(name)
    soc.start_redundant(prog, late_core=late_core,
                        stagger_nops=stagger_nops)
    soc.run(max_cycles=2_000_000)
    cfg = soc.config
    stats = soc.safedm.stats
    diff = soc.safedm.instruction_diff
    return {
        "cycles": soc.cycle,
        "finished": all(soc.cores[i].finished for i in soc.monitored),
        "checksum0": soc.memory.read(cfg.data_bases[0], 8),
        "checksum1": soc.memory.read(cfg.data_bases[1], 8),
        "expected": workload(name).expected_checksum,
        "committed0": soc.cores[0].stats.committed,
        "committed1": soc.cores[1].stats.committed,
        "zero_staggering": diff.stats.zero_staggering_cycles,
        "no_diversity": stats.no_diversity_cycles,
        "no_data_diversity": stats.no_data_diversity_cycles,
        "no_instruction_diversity": stats.no_instruction_diversity_cycles,
        "sampled": stats.sampled_cycles,
        "ipc0": soc.cores[0].stats.ipc,
        "mispredicts0": soc.cores[0].stats.branch_mispredicts,
    }


def run_asm_single(source: str, max_cycles: int = 200_000,
                   config: SocConfig = None):
    """Assemble ``source``, run it on core 0 only, return the SoC.

    Core 1 idles (started on an immediate ebreak), so tests can verify
    single-core architectural behaviour.
    """
    soc = MPSoC(config=config)
    prog = assemble(source, base=soc.config.text_base)
    soc.load(prog)
    halt = assemble("_start: ebreak", base=0x0008_0000)
    soc.load(halt)
    soc.start_core(0, prog.entry)
    soc.start_core(1, halt.entry)
    start = soc.cycle
    while soc.cycle - start < max_cycles:
        if soc.cores[0].finished:
            break
        soc.step()
    return soc


def run_asm_redundant(source: str, max_cycles: int = 200_000,
                      stagger_nops: int = 0, config: SocConfig = None,
                      **socargs):
    """Assemble ``source`` and run it redundantly; returns the SoC."""
    soc = MPSoC(config=config, **socargs)
    prog = assemble(source, base=soc.config.text_base)
    soc.start_redundant(prog, stagger_nops=stagger_nops)
    soc.run(max_cycles=max_cycles)
    return soc


@pytest.fixture
def soc():
    """A fresh default MPSoC."""
    return MPSoC()
