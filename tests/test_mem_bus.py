"""AHB bus model tests: arbitration, L2 behaviour, timing."""

from repro.mem.bus import AhbBus, BusTiming
from repro.mem.cache import CacheConfig


def make_bus(**timing_kwargs):
    return AhbBus(num_masters=2, timing=BusTiming(**timing_kwargs),
                  l2_config=CacheConfig(size=1024, line_size=32, ways=2))


class TestServiceTiming:
    def test_l2_miss_then_hit_latency(self):
        bus = make_bus()
        t = bus.timing
        req1 = bus.request_line(0, 0x1000, cycle=0)
        bus.step(0)
        miss_time = req1.complete_cycle - 0
        assert miss_time == t.grant + t.l2_hit + t.l2_miss + t.transfer
        assert req1.l2_hit is False
        # Same line again: now an L2 hit, shorter.
        req2 = bus.request_line(0, 0x1000, cycle=100)
        bus.step(100)
        hit_time = req2.complete_cycle - 100
        assert hit_time == t.grant + t.l2_hit + t.transfer
        assert req2.l2_hit is True
        assert hit_time < miss_time

    def test_request_done_semantics(self):
        bus = make_bus()
        req = bus.request_line(0, 0x2000, cycle=0)
        assert not req.done(0)
        bus.step(0)
        assert not req.done(req.complete_cycle - 1)
        assert req.done(req.complete_cycle)

    def test_store_is_shorter_than_line_fill(self):
        bus = make_bus()
        fill = bus.request_line(0, 0x3000, cycle=0)
        bus.step(0)
        store = bus.request_store(0, 0x4000, cycle=1000)
        bus.step(1000)
        assert (store.complete_cycle - 1000) < (fill.complete_cycle - 0)


class TestArbitration:
    def test_single_transaction_at_a_time(self):
        bus = make_bus()
        req_a = bus.request_line(0, 0x1000, cycle=0)
        req_b = bus.request_line(1, 0x2000, cycle=0)
        bus.step(0)
        assert req_a.granted != req_b.granted  # only one granted
        assert bus.busy

    def test_second_master_waits_for_bus(self):
        bus = make_bus()
        req_a = bus.request_line(0, 0x1000, cycle=0)
        req_b = bus.request_line(1, 0x2000, cycle=0)
        cycle = 0
        while not (req_a.done(cycle) and req_b.done(cycle)):
            bus.step(cycle)
            cycle += 1
        # Serialization: the second completion strictly after the first.
        assert req_b.complete_cycle > req_a.complete_cycle

    def test_round_robin_alternates_priority(self):
        bus = make_bus()
        # First simultaneous pair: master 0 wins (rr starts at 0).
        a0 = bus.request_line(0, 0x1000, cycle=0)
        b0 = bus.request_line(1, 0x2000, cycle=0)
        bus.step(0)
        assert a0.granted and not b0.granted
        # Pointer moved past master 0: master 1 is next.
        assert bus._rr_next == 1

    def test_contended_grants_counted(self):
        bus = make_bus()
        bus.request_line(0, 0x1000, cycle=0)
        bus.request_line(1, 0x2000, cycle=0)
        bus.step(0)
        assert bus.stats.contended_grants == 1

    def test_future_requests_not_granted_early(self):
        bus = make_bus()
        req = bus.request_line(0, 0x1000, cycle=10)
        bus.step(0)
        assert not req.granted
        bus.step(10)
        assert req.granted


class TestSharedL2:
    def test_cross_master_warming(self):
        """Master 1 hits lines that master 0's misses brought into L2 —
        the catch-up mechanism behind the paper's natural divergence."""
        bus = make_bus()
        req_a = bus.request_line(0, 0x1000, cycle=0)
        bus.step(0)
        req_b = bus.request_line(1, 0x1000, cycle=req_a.complete_cycle)
        bus.step(req_a.complete_cycle)
        assert req_b.l2_hit is True

    def test_store_allocates_in_l2(self):
        bus = make_bus()
        store = bus.request_store(0, 0x5000, cycle=0)
        bus.step(0)
        assert store.l2_hit is False
        load = bus.request_line(0, 0x5000, cycle=100)
        bus.step(100)
        assert load.l2_hit is True

    def test_reset_clears_everything(self):
        bus = make_bus()
        bus.request_line(0, 0x1000, cycle=0)
        bus.step(0)
        bus.reset()
        assert not bus.busy
        assert bus.pending_requests() == 0
        req = bus.request_line(0, 0x1000, cycle=200)
        bus.step(200)
        assert req.l2_hit is False  # L2 was invalidated


class TestStats:
    def test_transaction_counters(self):
        bus = make_bus()
        bus.request_line(0, 0x1000, cycle=0)
        bus.step(0)
        bus.request_store(0, 0x2000, cycle=100)
        bus.step(100)
        assert bus.stats.transactions == 2
        assert bus.stats.store_transactions == 1
        assert bus.stats.l2_misses == 2
