"""Experiment-protocol tests (the Table I measurement procedure)."""

from repro.soc.experiment import (
    PAPER_STAGGER_VALUES,
    run_cell,
    run_redundant,
    run_row,
)
from repro.workloads import program


class TestRunRedundant:
    def test_result_fields(self):
        result = run_redundant(program("countnegative"),
                               benchmark="countnegative")
        assert result.finished
        assert result.cycles > 0
        assert result.committed > 0
        assert result.zero_staggering_cycles >= 0
        assert result.no_diversity_cycles <= result.zero_staggering_cycles \
            or result.no_diversity_cycles >= 0
        assert 0 < result.ipc <= 2.0

    def test_deterministic(self):
        a = run_redundant(program("bitonic"), benchmark="bitonic")
        b = run_redundant(program("bitonic"), benchmark="bitonic")
        assert a.cycles == b.cycles
        assert a.zero_staggering_cycles == b.zero_staggering_cycles
        assert a.no_diversity_cycles == b.no_diversity_cycles

    def test_rr_start_changes_run(self):
        a = run_redundant(program("bitonic"), rr_start=0)
        b = run_redundant(program("bitonic"), rr_start=1)
        # Different arbiter start: a (usually) different trajectory;
        # at minimum both complete with sane counters.
        assert a.finished and b.finished

    def test_late_core_choice(self):
        a = run_redundant(program("countnegative"), stagger_nops=100,
                          late_core=0)
        b = run_redundant(program("countnegative"), stagger_nops=100,
                          late_core=1)
        assert a.finished and b.finished

    def test_summary_text(self):
        result = run_redundant(program("countnegative"),
                               benchmark="countnegative")
        assert "countnegative" in result.summary()


class TestCellProtocol:
    def test_no_stagger_cell_runs_arbiter_variants(self):
        cell = run_cell(program("countnegative"), "countnegative", 0)
        assert len(cell.runs) == 2
        assert {r.stagger_nops for r in cell.runs} == {0}

    def test_staggered_cell_runs_both_late_cores(self):
        cell = run_cell(program("countnegative"), "countnegative", 100)
        assert len(cell.runs) == 2
        assert {r.late_core for r in cell.runs} == {0, 1}

    def test_cell_reports_max(self):
        cell = run_cell(program("countnegative"), "countnegative", 0)
        assert cell.zero_staggering_cycles == max(
            r.zero_staggering_cycles for r in cell.runs)
        assert cell.no_diversity_cycles == max(
            r.no_diversity_cycles for r in cell.runs)


class TestRowShape:
    def test_row_covers_paper_stagger_values(self):
        row = run_row(program("countnegative"), "countnegative",
                      stagger_values=(0, 100))
        assert [c.stagger_nops for c in row] == [0, 100]

    def test_paper_stagger_values_constant(self):
        assert PAPER_STAGGER_VALUES == (0, 100, 1000, 10000)

    def test_staggering_suppresses_zero_stag(self):
        """The paper's headline trend on one benchmark: initial
        staggering drives the zero-staggering count down (to zero)."""
        base = run_cell(program("countnegative"), "countnegative", 0)
        staggered = run_cell(program("countnegative"), "countnegative",
                             1000)
        assert staggered.zero_staggering_cycles <= \
            base.zero_staggering_cycles
        assert staggered.no_diversity_cycles <= base.no_diversity_cycles
        assert staggered.no_diversity_cycles == 0
