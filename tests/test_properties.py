"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.fifo import HardwareFifo
from repro.core.history import EpisodeHistogram
from repro.core.signatures import DataSignatureUnit, SignatureConfig
from repro.cpu.exec_unit import execute_alu
from repro.isa.decoder import decode
from repro.isa.encoder import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import SPECS
from repro.mem.memory import Memory

MASK = (1 << 64) - 1

regs = st.integers(min_value=0, max_value=31)
imm12 = st.integers(min_value=-2048, max_value=2047)
u64 = st.integers(min_value=0, max_value=MASK)


# --- encode/decode round trip -------------------------------------------------

@given(rd=regs, rs1=regs, rs2=regs,
       name=st.sampled_from(["add", "sub", "sll", "slt", "sltu", "xor",
                             "srl", "sra", "or", "and", "mul", "div",
                             "rem", "addw", "subw", "mulw"]))
def test_r_type_round_trip(name, rd, rs1, rs2):
    instr = Instruction(SPECS[name], rd=rd, rs1=rs1, rs2=rs2)
    back = decode(encode(instr))
    assert (back.mnemonic, back.rd, back.rs1, back.rs2) == \
        (name, rd, rs1, rs2)


@given(rd=regs, rs1=regs, imm=imm12,
       name=st.sampled_from(["addi", "slti", "sltiu", "xori", "ori",
                             "andi", "addiw", "ld", "lw", "lh", "lb",
                             "lbu", "lhu", "lwu", "jalr"]))
def test_i_type_round_trip(name, rd, rs1, imm):
    instr = Instruction(SPECS[name], rd=rd, rs1=rs1, imm=imm)
    back = decode(encode(instr))
    assert (back.mnemonic, back.rd, back.rs1, back.imm) == \
        (name, rd, rs1, imm)


@given(rs1=regs, rs2=regs, imm=imm12,
       name=st.sampled_from(["sb", "sh", "sw", "sd"]))
def test_s_type_round_trip(name, rs1, rs2, imm):
    instr = Instruction(SPECS[name], rs1=rs1, rs2=rs2, imm=imm)
    back = decode(encode(instr))
    assert (back.mnemonic, back.rs1, back.rs2, back.imm) == \
        (name, rs1, rs2, imm)


@given(rs1=regs, rs2=regs,
       imm=st.integers(min_value=-2048, max_value=2047).map(lambda i:
                                                            i * 2),
       name=st.sampled_from(["beq", "bne", "blt", "bge", "bltu",
                             "bgeu"]))
def test_b_type_round_trip(name, rs1, rs2, imm):
    instr = Instruction(SPECS[name], rs1=rs1, rs2=rs2, imm=imm)
    back = decode(encode(instr))
    assert (back.mnemonic, back.rs1, back.rs2, back.imm) == \
        (name, rs1, rs2, imm)


@given(rd=regs,
       imm=st.integers(min_value=-(1 << 19),
                       max_value=(1 << 19) - 1).map(lambda i: i * 2))
def test_jal_round_trip(rd, imm):
    instr = Instruction(SPECS["jal"], rd=rd, imm=imm)
    back = decode(encode(instr))
    assert (back.rd, back.imm) == (rd, imm)


# --- ALU semantics against Python oracles -------------------------------------

@given(a=u64, b=u64)
def test_add_sub_inverse(a, b):
    instr_add = Instruction(SPECS["add"], rd=1, rs1=2, rs2=3)
    instr_sub = Instruction(SPECS["sub"], rd=1, rs1=2, rs2=3)
    total = execute_alu(instr_add, a, b)
    assert execute_alu(instr_sub, total, b) == a


@given(a=u64, b=u64)
def test_mul_matches_python(a, b):
    instr = Instruction(SPECS["mul"], rd=1, rs1=2, rs2=3)
    assert execute_alu(instr, a, b) == (a * b) & MASK


@given(a=u64, b=st.integers(min_value=1, max_value=MASK))
def test_divu_remu_reconstruct(a, b):
    divu = Instruction(SPECS["divu"], rd=1, rs1=2, rs2=3)
    remu = Instruction(SPECS["remu"], rd=1, rs1=2, rs2=3)
    q = execute_alu(divu, a, b)
    r = execute_alu(remu, a, b)
    assert (q * b + r) & MASK == a
    assert r < b


@given(a=u64, b=u64)
def test_div_rem_signed_reconstruct(a, b):
    div = Instruction(SPECS["div"], rd=1, rs1=2, rs2=3)
    rem = Instruction(SPECS["rem"], rd=1, rs1=2, rs2=3)
    q = execute_alu(div, a, b)
    r = execute_alu(rem, a, b)
    if b != 0:
        assert (q * b + r) & MASK == a


@given(a=u64, shamt=st.integers(min_value=0, max_value=63))
def test_shift_pairs(a, shamt):
    slli = Instruction(SPECS["slli"], rd=1, rs1=2, imm=shamt)
    srli = Instruction(SPECS["srli"], rd=1, rs1=2, imm=shamt)
    assert execute_alu(slli, a, 0) == (a << shamt) & MASK
    assert execute_alu(srli, a, 0) == a >> shamt


# --- FIFO invariants ----------------------------------------------------------

@given(values=st.lists(st.integers(), min_size=0, max_size=50),
       depth=st.integers(min_value=1, max_value=10))
def test_fifo_keeps_last_n(values, depth):
    fifo = HardwareFifo(depth)
    for value in values:
        fifo.push(value)
    expected = ([0] * depth + values)[-depth:]
    assert fifo.contents() == tuple(expected)


@given(values=st.lists(st.tuples(st.integers(), st.booleans()),
                       max_size=50),
       depth=st.integers(min_value=1, max_value=8))
def test_fifo_hold_never_changes_contents(values, depth):
    fifo = HardwareFifo(depth)
    for value, hold in values:
        before = fifo.contents()
        fifo.push(value, hold=hold)
        if hold:
            assert fifo.contents() == before
    assert len(fifo.contents()) == depth


# --- Data-signature invariants -------------------------------------------------

samples = st.lists(
    st.lists(st.tuples(st.integers(0, 1), st.integers(0, MASK)),
             min_size=4, max_size=4),
    min_size=0, max_size=30)


@given(stream=samples)
def test_identical_streams_never_diverse(stream):
    """No false diversity: identical port streams compare equal."""
    config = SignatureConfig(num_ports=4, ds_depth=5)
    a, b = DataSignatureUnit(config), DataSignatureUnit(config)
    for cycle_samples in stream:
        a.sample(cycle_samples)
        b.sample(cycle_samples)
        assert a.equal(b)


@given(stream=samples.filter(lambda s: len(s) >= 1),
       flip_bit=st.integers(0, 63))
def test_any_recent_difference_is_diverse(stream, flip_bit):
    """No false negatives within the window: any difference in the
    last n samples makes the signatures differ."""
    config = SignatureConfig(num_ports=4, ds_depth=5)
    a, b = DataSignatureUnit(config), DataSignatureUnit(config)
    for cycle_samples in stream[:-1]:
        a.sample(cycle_samples)
        b.sample(cycle_samples)
    last = stream[-1]
    mutated = [(last[0][0], last[0][1] ^ (1 << flip_bit))] + last[1:]
    a.sample(last)
    b.sample(mutated)
    assert not a.equal(b)


@given(stream=samples, extra=st.integers(5, 20))
def test_difference_expires_after_window(stream, extra):
    config = SignatureConfig(num_ports=4, ds_depth=5)
    a, b = DataSignatureUnit(config), DataSignatureUnit(config)
    a.sample([(1, 1), (0, 0), (0, 0), (0, 0)])
    b.sample([(1, 2), (0, 0), (0, 0), (0, 0)])
    idle = [(0, 0)] * 4
    for _ in range(extra):
        a.sample(idle)
        b.sample(idle)
    assert a.equal(b)


# --- histogram invariants --------------------------------------------------------

@given(pattern=st.lists(st.booleans(), max_size=200),
       bin_size=st.integers(1, 8))
def test_histogram_cycle_conservation(pattern, bin_size):
    hist = EpisodeHistogram(bin_size=bin_size, num_bins=16)
    for value in pattern:
        hist.sample(value)
    hist.finish()
    assert hist.total_cycles == sum(pattern)
    # episode count equals the number of True-runs
    runs = 0
    previous = False
    for value in pattern:
        if value and not previous:
            runs += 1
        previous = value
    assert hist.episodes == runs
    assert sum(hist.bins) == runs


# --- memory invariants -------------------------------------------------------------

@given(address=st.integers(0, 1 << 40).map(lambda a: a & ~7),
       value=u64,
       size=st.sampled_from([1, 2, 4, 8]))
def test_memory_write_read_round_trip(address, value, size):
    mem = Memory()
    mem.write(address, value, size)
    assert mem.read(address, size) == value & ((1 << (8 * size)) - 1)


@given(address=st.integers(0, 1 << 30).map(lambda a: a & ~7),
       first=u64, second=u64)
def test_memory_last_write_wins(address, first, second):
    mem = Memory()
    mem.write(address, first, 8)
    mem.write(address, second, 8)
    assert mem.read(address, 8) == second


# --- digest fast path vs structural slow path --------------------------------

paired_streams = st.lists(
    st.tuples(
        st.lists(st.tuples(st.integers(0, 1), st.integers(0, MASK)),
                 min_size=4, max_size=4),
        st.lists(st.tuples(st.integers(0, 1), st.integers(0, MASK)),
                 min_size=4, max_size=4),
        st.booleans(),   # feed unit b the same row as unit a?
        st.booleans(),   # hold unit a this cycle
        st.booleans()),  # hold unit b this cycle
    max_size=40)


@given(stream=paired_streams)
def test_ds_digest_fast_path_matches_structural(stream):
    """equal()'s rolling-digest fast path agrees with the structural
    signature comparison on every prefix of arbitrary paired streams,
    including holds and mixed identical/divergent rows."""
    config = SignatureConfig(num_ports=4, ds_depth=5)
    a, b = DataSignatureUnit(config), DataSignatureUnit(config)
    for row_a, row_b, same, hold_a, hold_b in stream:
        a.sample(row_a, hold=hold_a)
        b.sample(row_a if same else row_b, hold=hold_b)
        assert a.equal(b) == (a.signature() == b.signature())
        assert b.equal(a) == a.equal(b)


@given(stream=paired_streams)
def test_is_digest_fast_path_matches_structural(stream):
    """Same property for the Instruction Signature digest, driving the
    (valid, word) slot form through both units."""
    from repro.core.signatures import InstructionSignatureUnit
    config = SignatureConfig(pipeline_width=2, pipeline_stages=2)
    a = InstructionSignatureUnit(config)
    b = InstructionSignatureUnit(config)
    for row_a, row_b, same, hold_a, hold_b in stream:
        slots_a = [row_a[:2], row_a[2:]]
        slots_b = slots_a if same else [row_b[:2], row_b[2:]]
        a.sample_stages(slots_a, hold=hold_a)
        b.sample_stages(slots_b, hold=hold_b)
        assert a.equal(b) == (a.signature() == b.signature())
