"""Workload kernel validation: all 29 TACLe-suite kernels.

Each kernel must (a) assemble, (b) run to completion redundantly,
(c) produce its Python-reference checksum on *both* cores, and
(d) behave deterministically.
"""

import pytest

from repro.workloads import TACLE_KERNELS, program, workload
from repro.workloads.dsl import lcg_reference

from conftest import run_workload_cached


class TestRegistry:
    def test_paper_has_29_benchmarks(self):
        assert len(TACLE_KERNELS) == 29

    def test_all_workloads_assemble(self):
        for name in TACLE_KERNELS:
            prog = program(name)
            assert prog.size > 0
            assert prog.entry == prog.symbol("_start")

    def test_metadata_present(self):
        for name in TACLE_KERNELS:
            spec = workload(name)
            assert spec.name == name
            assert spec.description
            assert spec.category
            assert spec.expected_checksum is not None

    def test_unknown_name_rejected(self):
        from repro.workloads import REGISTRY
        with pytest.raises(KeyError):
            REGISTRY.get("nosuchbench")

    def test_program_caching(self):
        from repro.workloads import REGISTRY
        assert REGISTRY.program("fac") is REGISTRY.program("fac")


class TestLcgReference:
    def test_deterministic(self):
        assert lcg_reference(42, 5) == lcg_reference(42, 5)

    def test_seed_sensitivity(self):
        assert lcg_reference(1, 5) != lcg_reference(2, 5)

    def test_shift_bounds_values(self):
        for value in lcg_reference(7, 100, shift=48):
            assert 0 <= value < (1 << 16)


@pytest.mark.parametrize("name", TACLE_KERNELS)
class TestKernelCorrectness:
    def test_finishes_and_checksum_matches(self, name):
        run = run_workload_cached(name)
        assert run["finished"], "%s did not finish" % name
        assert run["checksum0"] == run["expected"], \
            "%s core0 checksum mismatch" % name
        assert run["checksum1"] == run["expected"], \
            "%s core1 checksum mismatch" % name

    def test_cores_commit_equal_instruction_counts(self, name):
        run = run_workload_cached(name)
        assert run["committed0"] == run["committed1"]

    def test_monitor_counters_sane(self, name):
        run = run_workload_cached(name)
        assert 0 <= run["no_diversity"] <= run["sampled"]
        assert run["no_diversity"] <= run["no_data_diversity"]
        assert run["no_diversity"] <= run["no_instruction_diversity"]
        assert 0 <= run["zero_staggering"] <= run["sampled"]


class TestSortKernelsProduceSortedMemory:
    @pytest.mark.parametrize("name,count", [
        ("bsort", 72), ("insertsort", 96), ("quicksort", 192),
        ("bitonic", 64),
    ])
    def test_array_sorted(self, name, count):
        from repro.soc.mpsoc import MPSoC
        soc = MPSoC()
        soc.start_redundant(program(name))
        soc.run(max_cycles=2_000_000)
        base = soc.config.data_bases[0] + 64
        values = [soc.memory.read(base + 8 * i, 8) for i in range(count)]
        assert values == sorted(values)
