"""Snapshot/restore tests: determinism, codec, stores, fork campaigns.

The load-bearing property: for ANY kernel, snapshotting the MPSoC at
cycle k, restoring into a *fresh* platform, and continuing the run
reproduces the uninterrupted run bit-for-bit — every counter, stream,
and verdict.  The fork-from-checkpoint fault campaign rests entirely
on this.
"""

import dataclasses

import pytest

from repro.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointMeta,
    Snapshot,
    jsonable,
)
from repro.fault import (
    ForkEngine,
    golden_run_with_checkpoints,
    inject_common_cause,
    run_ccf_campaign,
    shared_address_config,
    spread_cycles,
)
from repro.runner.cache import (
    CheckpointIndexStore,
    CheckpointStore,
    checkpoint_index_key,
    checkpoint_key,
)
from repro.soc.experiment import run_redundant
from repro.soc.mpsoc import MPSoC
from repro.workloads import all_names, program

#: Truncated so the 29-kernel property sweep stays test-suite cheap;
#: every kernel still exercises thousands of monitored cycles.
MAX_CYCLES = 4000

PROGRAM = "countnegative"  # short, memory-touching kernel


def _reference_run(prog, **kwargs):
    """The uninterrupted run: final state dict plus cycle count."""
    soc = MPSoC()
    soc.start_redundant(prog, **kwargs)
    soc.run(max_cycles=MAX_CYCLES)
    return soc


def _interrupted_run(prog, k, **kwargs):
    """Step to cycle ``k`` (no monitor finish) and snapshot."""
    soc = MPSoC()
    soc.start_redundant(prog, **kwargs)
    while soc.cycle < k:
        soc.step()
    return soc.snapshot(benchmark="interrupted")


def _continue_from(snapshot):
    """Restore ``snapshot`` into a fresh platform and finish the run."""
    soc = MPSoC()
    soc.load_state_dict(snapshot.state)
    soc.run(max_cycles=MAX_CYCLES - soc.cycle)
    return soc


# --- the headline property: restore == uninterrupted, every kernel ----------

@pytest.mark.slow
@pytest.mark.parametrize("name", all_names())
def test_restore_matches_uninterrupted_for_every_kernel(name):
    prog = program(name)
    reference = _reference_run(prog)
    k = max(1, reference.cycle // 2)
    snapshot = _interrupted_run(prog, k)
    # Round-trip through the binary codec: the restored platform sees
    # exactly what a disk checkpoint would provide.
    resumed = _continue_from(Snapshot.decode(snapshot.encode()))
    assert resumed.cycle == reference.cycle
    assert jsonable(resumed.state_dict()) == \
        jsonable(reference.state_dict()), name


@pytest.mark.slow
def test_restore_mid_staggered_preload():
    """Snapshotting while the late core is still inside its nop sled
    must preserve the staggering correction and diff preload."""
    prog = program("cosf")
    for late_core in (0, 1):
        reference = _reference_run(prog, stagger_nops=100,
                                   late_core=late_core)
        # Cycle 40: the 100-nop sled is still draining.
        snapshot = _interrupted_run(prog, 40, stagger_nops=100,
                                    late_core=late_core)
        resumed = _continue_from(Snapshot.decode(snapshot.encode()))
        assert jsonable(resumed.state_dict()) == \
            jsonable(reference.state_dict()), late_core


def test_run_redundant_resume_matches_uninterrupted():
    """The experiment layer's resume path reports the absolute result."""
    prog = program(PROGRAM)
    grabbed = {}

    def keep_first(soc):
        if "snap" not in grabbed:
            grabbed["snap"] = soc.snapshot(benchmark=PROGRAM)

    full = run_redundant(prog, benchmark=PROGRAM, max_cycles=MAX_CYCLES,
                         checkpoint_every=500, on_checkpoint=keep_first)
    resumed = run_redundant(prog, benchmark=PROGRAM,
                            max_cycles=MAX_CYCLES,
                            resume_from=grabbed["snap"])
    assert dataclasses.asdict(resumed) == dataclasses.asdict(full)


def test_run_redundant_rejects_resume_with_capture():
    prog = program(PROGRAM)
    snap = MPSoC().snapshot()
    with pytest.raises(ValueError):
        run_redundant(prog, resume_from=snap, capture=object())


# --- codec ------------------------------------------------------------------

def _small_snapshot():
    soc = MPSoC()
    soc.start_redundant(program(PROGRAM))
    for _ in range(200):
        soc.step()
    return soc.snapshot(benchmark=PROGRAM, checkpoint_every=100,
                        sim_key="abc123")


def test_codec_round_trip_preserves_state_and_meta():
    snapshot = _small_snapshot()
    decoded = Snapshot.decode(snapshot.encode())
    assert jsonable(decoded.state) == jsonable(snapshot.state)
    assert dataclasses.asdict(decoded.meta) == \
        dataclasses.asdict(snapshot.meta)
    assert decoded.meta.cycle == 200
    assert decoded.meta.sim_key == "abc123"


def test_codec_digest_is_content_addressed():
    snapshot = _small_snapshot()
    decoded = Snapshot.decode(snapshot.encode())
    assert decoded.digest() == snapshot.digest()
    other = Snapshot({"cycle": 1}, CheckpointMeta())
    assert other.digest() != snapshot.digest()


def test_codec_rejects_garbage():
    with pytest.raises(ValueError):
        Snapshot.decode(b"NOPE" + b"\x00" * 16)


def test_codec_rejects_truncation():
    blob = _small_snapshot().encode()
    with pytest.raises((ValueError, EOFError)):
        Snapshot.decode(blob[: len(blob) // 2])


def test_codec_file_round_trip(tmp_path):
    snapshot = _small_snapshot()
    path = tmp_path / "state.ckpt"
    snapshot.save(path)
    loaded = Snapshot.load(path)
    assert jsonable(loaded.state) == jsonable(snapshot.state)
    assert loaded.meta.checkpoint_every == 100


# --- cache stores -----------------------------------------------------------

def test_checkpoint_store_round_trip(tmp_path):
    store = CheckpointStore(tmp_path)
    snapshot = _small_snapshot()
    key = checkpoint_key("simkey", cycle=200, every=100)
    store.put(key, snapshot)
    assert store.bytes_written > 0
    cached = store.get(key)
    assert jsonable(cached.state) == jsonable(snapshot.state)
    blob = store.get_blob(key)
    assert blob == snapshot.encode()


def test_checkpoint_store_evicts_corrupt_entry(tmp_path):
    store = CheckpointStore(tmp_path)
    bad = tmp_path / ("badkey" + CheckpointStore.SUFFIX)
    bad.write_bytes(b"NOPE not a snapshot")
    assert store.get("badkey") is None
    assert store.evictions == 1
    assert not bad.exists()


def test_checkpoint_index_store_evicts_stale_schema(tmp_path):
    store = CheckpointIndexStore(tmp_path)
    old = tmp_path / ("oldkey" + CheckpointIndexStore.SUFFIX)
    old.write_text('{"schema": 1, "index": {"cycles": [100]}}')
    assert store.get("oldkey") is None
    assert store.evictions == 1
    assert not old.exists()


def test_checkpoint_index_store_round_trip(tmp_path):
    store = CheckpointIndexStore(tmp_path)
    key = checkpoint_index_key("simkey", every=100)
    store.put(key, {"every": 100, "cycles": [100, 200]})
    assert store.get(key) == {"every": 100, "cycles": [100, 200]}
    assert checkpoint_key("simkey", cycle=100, every=100) != \
        checkpoint_key("simkey", cycle=100, every=200)
    assert checkpoint_index_key("a", every=100) != \
        checkpoint_index_key("b", every=100)


def test_schema_version_is_live():
    assert Snapshot.decode(_small_snapshot().encode())
    assert CHECKPOINT_SCHEMA_VERSION >= 1


# --- fork engine ------------------------------------------------------------

@pytest.fixture(scope="module")
def artifact():
    return golden_run_with_checkpoints(program(PROGRAM),
                                       checkpoint_every=500)


def test_golden_artifact_shape(artifact):
    assert artifact.checkpoint_cycles
    assert all(c % 500 == 0 for c in artifact.checkpoint_cycles)
    assert len(artifact.snapshots) == len(artifact.checkpoint_cycles)
    assert len(artifact.exempt_masks) == len(artifact.checkpoint_cycles)
    for masks in artifact.exempt_masks:
        assert len(masks) == len(artifact.monitored)
    assert artifact.finished
    assert artifact.outputs[0] == artifact.outputs[1]


def test_fork_restores_nearest_checkpoint(artifact):
    engine = ForkEngine(program(PROGRAM), artifact)
    first = artifact.checkpoint_cycles[0]
    soc = engine.fork(first + first // 2)
    assert soc.cycle == first
    assert engine.forks == 1 and engine.restores == 1
    # Before the first checkpoint there is nothing to fork from.
    scratch = engine.fork(first - 1)
    assert scratch.cycle == 0
    assert engine.scratch_runs == 1


def test_fork_equals_scratch_single_injection(artifact):
    prog = program(PROGRAM)
    fork = ForkEngine(prog, artifact)
    cycle = artifact.checkpoint_cycles[0] + 137
    base = inject_common_cause(prog, cycle, 0x5EED,
                               golden=artifact.checksum)
    forked = inject_common_cause(prog, cycle, 0x5EED,
                                 golden=artifact.checksum, fork=fork)
    assert dataclasses.asdict(forked) == dataclasses.asdict(base)


# --- campaigns: fork == scratch == parallel ---------------------------------

@pytest.mark.slow
def test_campaign_fork_and_parallel_bit_identical(tmp_path):
    """Every InjectionResult field matches across the three engines,
    and the no-false-negative property holds throughout."""
    prog = program(PROGRAM)
    config = shared_address_config()
    probe = run_redundant(prog, config=config)
    cycles = spread_cycles(probe.cycles, 4)

    scratch = run_ccf_campaign(prog, cycles, config=config)
    fork = run_ccf_campaign(prog, cycles, config=config,
                            checkpoint_every=500, cache_dir=tmp_path)
    par = run_ccf_campaign(prog, cycles, config=config,
                           checkpoint_every=500, cache_dir=tmp_path,
                           jobs=2)

    for other in (fork, par):
        assert len(other.injections) == len(scratch.injections)
        for a, b in zip(scratch.injections, other.injections):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
    assert scratch.silent_despite_diversity == 0
    assert fork.summary() == scratch.summary()


@pytest.mark.slow
def test_campaign_warm_start_reuses_cached_golden(tmp_path):
    from repro.telemetry import MetricsRegistry
    prog = program(PROGRAM)
    config = shared_address_config()
    probe = run_redundant(prog, config=config)
    cycles = spread_cycles(probe.cycles, 3)

    cold = MetricsRegistry()
    first = run_ccf_campaign(prog, cycles, config=config,
                             checkpoint_every=500, cache_dir=tmp_path,
                             metrics=cold)
    assert cold.value("repro_checkpoint_saves_total") > 0
    assert cold.value("repro_checkpoint_index_hits_total") == 0

    warm = MetricsRegistry()
    second = run_ccf_campaign(prog, cycles, config=config,
                              checkpoint_every=500, cache_dir=tmp_path,
                              metrics=warm)
    assert warm.value("repro_checkpoint_index_hits_total") == 1
    assert warm.value("repro_checkpoint_saves_total", default=0) == 0
    for a, b in zip(first.injections, second.injections):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)
