"""Instruction-diff (staggering counter) unit tests."""

from repro.core.instruction_diff import InstructionDiff


class TestCounting:
    def test_starts_at_zero(self):
        diff = InstructionDiff()
        assert diff.diff == 0
        assert diff.zero_staggering

    def test_counts_commit_difference(self):
        diff = InstructionDiff()
        diff.sample(2, 0)
        assert diff.diff == 2
        diff.sample(0, 1)
        assert diff.diff == 1
        diff.sample(0, 1)
        assert diff.zero_staggering

    def test_negative_diff_when_core1_leads(self):
        diff = InstructionDiff()
        diff.sample(0, 2)
        assert diff.diff == -2
        assert not diff.zero_staggering

    def test_zero_staggering_cycles_counted(self):
        diff = InstructionDiff()
        diff.sample(0, 0)  # 0
        diff.sample(1, 0)  # 1
        diff.sample(0, 1)  # 0
        diff.sample(0, 0)  # 0
        assert diff.stats.zero_staggering_cycles == 3
        assert diff.stats.sampled_cycles == 4

    def test_min_max_tracking(self):
        diff = InstructionDiff()
        diff.sample(2, 0)
        diff.sample(0, 2)
        diff.sample(0, 2)
        assert diff.stats.max_diff == 2
        assert diff.stats.min_diff == -2

    def test_preload_models_sled_commits(self):
        """The experiment preloads the counter to compensate the nop
        sled so zero means equal *program* progress."""
        diff = InstructionDiff()
        diff.diff = 101  # 100 nops + sled jump
        # trailing core runs 101 sled instructions
        for _ in range(101):
            diff.sample(0, 1)
        assert diff.zero_staggering

    def test_reset(self):
        diff = InstructionDiff()
        diff.sample(5, 0)
        diff.reset()
        assert diff.diff == 0
        assert diff.stats.sampled_cycles == 0
