"""Store-buffer tests: coalescing, capacity, drain, ordering."""

from repro.mem.bus import AhbBus, BusTiming
from repro.mem.cache import CacheConfig
from repro.mem.store_buffer import StoreBuffer


def make_pair(depth=4, coalesce=True):
    bus = AhbBus(num_masters=1, timing=BusTiming(),
                 l2_config=CacheConfig(size=1024, line_size=32, ways=2))
    return bus, StoreBuffer(0, bus, depth=depth, coalesce=coalesce)


class TestAccept:
    def test_accepts_until_full(self):
        bus, sb = make_pair(depth=2)
        assert sb.push(0x000, cycle=0)
        assert sb.push(0x100, cycle=0)
        assert not sb.push(0x200, cycle=0)  # full, distinct lines
        assert sb.stats.full_stalls == 1

    def test_same_line_coalesces_when_full(self):
        bus, sb = make_pair(depth=2)
        sb.push(0x000, cycle=0)
        sb.push(0x100, cycle=0)
        # Same line as a pending entry: merged, not rejected.
        assert sb.push(0x108, cycle=0)
        assert sb.stats.coalesced == 1
        assert sb.occupancy == 2

    def test_no_coalescing_when_disabled(self):
        bus, sb = make_pair(depth=4, coalesce=False)
        sb.push(0x000, cycle=0)
        sb.push(0x008, cycle=0)  # same line, but coalescing off
        assert sb.stats.coalesced == 0
        assert sb.occupancy == 2

    def test_coalescing_reduces_transactions(self):
        """Four same-line stores -> one bus transaction (the mechanism
        behind the paper's pm timing anomaly)."""
        bus, sb = make_pair(depth=4)
        for offset in (0, 8, 16, 24):
            sb.push(0x200 + offset, cycle=0)
        cycle = 0
        while not sb.empty and cycle < 1000:
            sb.step(cycle)
            bus.step(cycle)
            cycle += 1
        assert sb.stats.transactions == 1
        assert sb.stats.stores_accepted == 4


class TestDrain:
    def test_drains_in_fifo_order(self):
        bus, sb = make_pair(depth=4)
        sb.push(0x000, cycle=0)
        sb.push(0x100, cycle=0)
        first_addresses = []
        cycle = 0
        while not sb.empty and cycle < 1000:
            sb.step(cycle)
            if sb._inflight is not None and \
                    sb._inflight.address not in first_addresses:
                first_addresses.append(sb._inflight.address)
            bus.step(cycle)
            cycle += 1
        assert first_addresses == [0x000, 0x100]

    def test_empty_after_drain(self):
        bus, sb = make_pair()
        sb.push(0x000, cycle=0)
        cycle = 0
        while not sb.empty and cycle < 1000:
            sb.step(cycle)
            bus.step(cycle)
            cycle += 1
        assert sb.empty
        assert sb.occupancy == 0


class TestLoadOrdering:
    def test_contains_line_for_pending_store(self):
        bus, sb = make_pair()
        sb.push(0x300, cycle=0)
        assert sb.contains_line(0x308)   # same line
        assert not sb.contains_line(0x320)

    def test_contains_line_tracks_inflight(self):
        bus, sb = make_pair()
        sb.push(0x300, cycle=0)
        sb.step(0)  # moves to in-flight
        assert sb.contains_line(0x300)

    def test_clears_after_drain(self):
        bus, sb = make_pair()
        sb.push(0x300, cycle=0)
        cycle = 0
        while not sb.empty and cycle < 1000:
            sb.step(cycle)
            bus.step(cycle)
            cycle += 1
        assert not sb.contains_line(0x300)

    def test_reset(self):
        bus, sb = make_pair()
        sb.push(0x300, cycle=0)
        sb.reset()
        assert sb.empty
