"""APB bridge and slave protocol tests."""

import pytest

from repro.mem.apb import ApbBridge, ApbError, ApbSlave


class ScratchSlave(ApbSlave):
    """A tiny RW register file for protocol testing."""

    window = 0x10

    def __init__(self):
        self.regs = {0x0: 0, 0x4: 0, 0x8: 0, 0xC: 0}

    def read_register(self, offset):
        if offset not in self.regs:
            raise ApbError("bad offset")
        return self.regs[offset]

    def write_register(self, offset, value):
        if offset not in self.regs:
            raise ApbError("bad offset")
        self.regs[offset] = value


class TestBridge:
    def test_attach_and_access(self):
        bridge = ApbBridge(base=0xFC000000)
        base = bridge.attach(ScratchSlave(), 0x100, "scratch")
        assert base == 0xFC000100
        bridge.write(base + 4, 0xAB)
        assert bridge.read(base + 4) == 0xAB

    def test_values_masked_to_32_bits(self):
        bridge = ApbBridge()
        base = bridge.attach(ScratchSlave(), 0)
        bridge.write(base, 0x1_2345_6789)
        assert bridge.read(base) == 0x2345_6789

    def test_unmapped_address_raises(self):
        bridge = ApbBridge()
        bridge.attach(ScratchSlave(), 0)
        with pytest.raises(ApbError):
            bridge.read(bridge.base + 0x1000)

    def test_misaligned_access_raises(self):
        bridge = ApbBridge()
        base = bridge.attach(ScratchSlave(), 0)
        with pytest.raises(ApbError):
            bridge.read(base + 2)
        with pytest.raises(ApbError):
            bridge.write(base + 1, 0)

    def test_overlapping_windows_rejected(self):
        bridge = ApbBridge()
        bridge.attach(ScratchSlave(), 0)
        with pytest.raises(ApbError):
            bridge.attach(ScratchSlave(), 0x8)  # inside first window

    def test_multiple_slaves_decode_independently(self):
        bridge = ApbBridge()
        base_a = bridge.attach(ScratchSlave(), 0x00, "a")
        base_b = bridge.attach(ScratchSlave(), 0x40, "b")
        bridge.write(base_a, 1)
        bridge.write(base_b, 2)
        assert bridge.read(base_a) == 1
        assert bridge.read(base_b) == 2

    def test_slaves_listing(self):
        bridge = ApbBridge()
        bridge.attach(ScratchSlave(), 0x00, "a")
        bridge.attach(ScratchSlave(), 0x40, "b")
        assert set(bridge.slaves()) == {"a", "b"}

    def test_base_slave_errors_propagate(self):
        bridge = ApbBridge()
        base = bridge.attach(ApbSlave(), 0)
        with pytest.raises(ApbError):
            bridge.read(base)
