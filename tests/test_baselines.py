"""Baseline-technique tests: lockstep, SafeDE, software staggering."""

import pytest

from repro.baselines.lockstep import LockstepComparator
from repro.baselines.safede import SafeDeEnforcer, run_with_enforcement
from repro.baselines.sw_stagger import (
    SoftwareStaggerer,
    run_with_sw_staggering,
)
from repro.baselines.unaware import compare_outputs
from repro.soc.mpsoc import MPSoC
from repro.workloads import program


class TestLockstep:
    def test_matching_streams_no_error(self):
        cmp_ = LockstepComparator(stagger=2)
        stream = [(0x13,), (0x33, 0x13), (), (0x67,)]
        for cycle, commits in enumerate(stream):
            cmp_.sample(cycle, commits, ())
        for cycle, commits in enumerate(stream, start=len(stream)):
            # shadow delivers the same stream two cycles later
            cmp_.sample(cycle, (), stream[cycle - len(stream)])
        assert not cmp_.error_detected
        assert cmp_.stats.compared > 0

    def test_diverging_stream_detected(self):
        cmp_ = LockstepComparator(stagger=1)
        cmp_.sample(0, (0x13,), ())
        cmp_.sample(1, (), (0x33,))  # shadow differs
        assert cmp_.error_detected
        assert cmp_.stats.first_mismatch_cycle == 1

    def test_stagger_must_be_positive(self):
        with pytest.raises(ValueError):
            LockstepComparator(stagger=0)

    def test_describe_is_fig1(self):
        text = LockstepComparator().describe()
        assert "shadow core" in text
        assert "compare" in text

    def test_stagger_one_full_stream(self):
        """Minimum staggering: shadow runs exactly one cycle behind."""
        cmp_ = LockstepComparator(stagger=1)
        stream = [(0x13,), (0x33, 0x13), (), (0x67,), (0x93,)]
        cmp_.sample(0, stream[0], ())
        for cycle in range(1, len(stream)):
            cmp_.sample(cycle, stream[cycle], stream[cycle - 1])
        cmp_.sample(len(stream), (), stream[-1])
        cmp_.flush(len(stream))
        assert not cmp_.error_detected
        assert cmp_.stats.compared == sum(len(c) for c in stream)

    def test_head_finishes_before_shadow(self):
        """The head drains while the shadow is still committing: the
        tail commits meet in the flush, not in live sampling."""
        cmp_ = LockstepComparator(stagger=3)
        stream = [(0x13,), (0x33,), (0x67,)]
        for cycle, commits in enumerate(stream):
            cmp_.sample(cycle, commits, ())
        # Head is done; shadow delivers everything afterwards.
        for cycle, commits in enumerate(stream, start=len(stream)):
            cmp_.sample(cycle, (), commits)
        cmp_.flush(2 * len(stream))
        assert not cmp_.error_detected
        assert cmp_.stats.compared == len(stream)

    def test_mismatch_on_final_commit_caught_by_flush(self):
        """A divergence in the very last commit sits in the delay FIFO
        when the cores halt — only the flush can surface it."""
        cmp_ = LockstepComparator(stagger=2)
        cmp_.sample(0, (0x13,), ())
        cmp_.sample(1, (0x67,), (0x13,))
        cmp_.sample(2, (), (0xBAD,))  # shadow's final commit differs
        assert not cmp_.error_detected  # head's 0x67 still delayed
        cmp_.flush(3)
        assert cmp_.error_detected
        assert cmp_.stats.mismatches == 1
        assert cmp_.stats.first_mismatch_cycle == 3

    def test_flush_counts_stream_imbalance_as_mismatch(self):
        """Replicas committing different instruction counts is itself
        a detected divergence."""
        cmp_ = LockstepComparator(stagger=1)
        cmp_.sample(0, (0x13, 0x33), ())
        cmp_.sample(1, (), (0x13,))  # shadow commits one fewer
        cmp_.flush(2)
        assert cmp_.error_detected
        assert cmp_.stats.mismatches == 1

    def test_equivalence_predicate_tolerates_delta(self):
        delta = 0x1000_0000
        cmp_ = LockstepComparator(
            stagger=1,
            equivalent=lambda a, b: b - a == delta)
        cmp_.sample(0, (0x4000_0000,), ())
        cmp_.sample(1, (), (0x5000_0000,))
        cmp_.flush(2)
        assert not cmp_.error_detected


class TestSafeDeEnforcer:
    def test_stalls_until_threshold(self):
        enforcer = SafeDeEnforcer(threshold=3)
        assert enforcer.sample(1, 0) is True   # diff 1 < 3
        assert enforcer.sample(1, 0) is True   # diff 2 < 3
        assert enforcer.sample(1, 0) is False  # diff 3 >= 3
        assert enforcer.stats.stall_cycles == 2

    def test_trail_catching_up_restalls(self):
        enforcer = SafeDeEnforcer(threshold=2)
        enforcer.sample(2, 0)
        assert enforcer.sample(0, 1) is True  # diff back to 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SafeDeEnforcer(threshold=0)

    def test_intrusiveness_metric(self):
        enforcer = SafeDeEnforcer(threshold=5)
        for _ in range(10):
            enforcer.sample(0, 0)
        assert enforcer.stats.intrusiveness == 1.0


class TestSafeDeOnSoc:
    def test_enforcement_maintains_staggering(self):
        soc = MPSoC()
        soc.start_redundant(program("countnegative"))
        enforcer = run_with_enforcement(soc, threshold=20)
        assert all(soc.cores[i].finished for i in soc.monitored)
        # After warm-up the trail core never gets within the threshold.
        assert soc.safedm.instruction_diff.stats.zero_staggering_cycles \
            <= enforcer.stats.cycles * 0.01
        assert enforcer.stats.stall_cycles > 0

    def test_enforcement_is_intrusive(self):
        """SafeDE slows the run down relative to free-running SafeDM."""
        free = MPSoC()
        free.start_redundant(program("countnegative"))
        free.run()
        enforced = MPSoC()
        enforced.start_redundant(program("countnegative"))
        run_with_enforcement(enforced, threshold=200)
        assert enforced.cycle > free.cycle

    def test_outputs_still_correct_under_enforcement(self):
        soc = MPSoC()
        soc.start_redundant(program("countnegative"))
        run_with_enforcement(soc, threshold=20)
        from repro.workloads import workload
        expected = workload("countnegative").expected_checksum
        assert soc.memory.read(soc.config.data_bases[0], 8) == expected
        assert soc.memory.read(soc.config.data_bases[1], 8) == expected


class TestSoftwareStaggerer:
    def test_checkpoint_granularity(self):
        staggerer = SoftwareStaggerer(threshold=10, check_interval=5)
        # Trail progresses freely for a full check interval before the
        # software monitor notices and holds it.
        stalls_before_checkpoint = 0
        for _ in range(4):
            stalls_before_checkpoint += staggerer.sample(0, 1)
        assert stalls_before_checkpoint == 0  # not yet checked
        assert staggerer.sample(0, 1) is True  # 5th commit: checkpoint
        assert staggerer.stats.checkpoints == 1
        assert staggerer.stats.stall_cycles == 1

    def test_spin_wait_until_lag_restored(self):
        staggerer = SoftwareStaggerer(threshold=3, check_interval=1)
        staggerer.sample(0, 1)  # checkpoint: diff -1 < 3 -> hold
        assert staggerer._holding
        assert staggerer.sample(2, 0) is True   # diff 1, still waiting
        assert staggerer.sample(2, 0) is False  # diff 3: released

    def test_on_soc(self):
        soc = MPSoC()
        soc.start_redundant(program("countnegative"))
        staggerer = run_with_sw_staggering(soc, threshold=50,
                                           check_interval=100)
        assert all(soc.cores[i].finished for i in soc.monitored)
        assert staggerer.stats.checkpoints > 0


class TestUnawareRedundancy:
    def test_correct_outputs(self):
        outcome = compare_outputs(5, 5, 5)
        assert outcome.correct and not outcome.detected
        assert not outcome.silent_failure

    def test_detected_mismatch(self):
        outcome = compare_outputs(5, 6, 5)
        assert outcome.detected and not outcome.correct

    def test_silent_failure_is_the_ccf_escape(self):
        outcome = compare_outputs(7, 7, 5)
        assert outcome.silent_failure
        assert not outcome.detected
