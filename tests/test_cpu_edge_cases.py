"""CPU edge cases and regression tests."""

from repro.cpu.core import CoreConfig
from repro.soc.config import SocConfig
from repro.mem.cache import CacheConfig

from conftest import run_asm_single

DATA0 = 0x4000_0000


class TestStoreToLoadOrdering:
    def test_load_after_store_same_line(self):
        """A load to a line with a pending buffered store must return
        the stored value (and wait for the drain)."""
        soc = run_asm_single("""
_start:
    li t0, 0xABCD
    sd t0, 64(gp)
    ld t1, 64(gp)      # same line, store still in the buffer
    sd t1, 0(gp)
    ebreak
""")
        assert soc.memory.read(DATA0, 8) == 0xABCD

    def test_burst_then_readback(self):
        source = ["_start:"]
        for i in range(12):
            source.append("    li t0, %d" % (i * 7))
            source.append("    sd t0, %d(gp)" % (64 + 8 * i))
        for i in range(12):
            source.append("    ld t1, %d(gp)" % (64 + 8 * i))
            source.append("    add s0, s0, t1")
        source.append("    sd s0, 0(gp)")
        source.append("    ebreak")
        soc = run_asm_single("\n".join(source))
        assert soc.memory.read(DATA0, 8) == sum(i * 7 for i in range(12))


class TestTinyStoreBuffer:
    def test_depth_one_buffer_still_correct(self):
        cfg = SocConfig(core=CoreConfig(store_buffer_depth=1,
                                        store_buffer_coalesce=False))
        soc = run_asm_single("""
_start:
    li s1, 16
    addi t1, gp, 64
loop:
    sd s1, 0(t1)
    addi t1, t1, 64    # a new line every store: no coalescing possible
    addi s1, s1, -1
    bnez s1, loop
    sd s1, 0(gp)
    ebreak
""", config=cfg, max_cycles=20_000)
        assert soc.cores[0].finished
        assert soc.memory.read(DATA0, 8) == 0
        assert soc.cores[0].store_buffer.stats.full_stalls > 0


class TestJalrEdgeCases:
    def test_target_low_bit_cleared(self):
        """jalr clears bit 0 of the computed target (RISC-V rule)."""
        soc = run_asm_single("""
_start:
    la t0, target
    addi t0, t0, 1     # deliberately odd
    jalr ra, 0(t0)
    ebreak
target:
    li t1, 55
    sd t1, 0(gp)
    ebreak
""")
        assert soc.memory.read(DATA0, 8) == 55

    def test_chained_indirect_calls(self):
        soc = run_asm_single("""
_start:
    la t0, f1
    jalr ra, 0(t0)
    sd a0, 0(gp)
    ebreak
f1:
    addi a0, a0, 1
    la t1, f2
    mv t2, ra
    jalr ra, 0(t1)
    mv ra, t2
    ret
f2:
    addi a0, a0, 10
    ret
""")
        assert soc.memory.read(DATA0, 8) == 11


class TestSquashRegression:
    def test_mispredicted_branch_releases_jalr_fetch_block(self):
        """Regression: a taken branch squashing a speculatively fetched
        jalr used to leave the fetch unit blocked forever."""
        soc = run_asm_single("""
_start:
    li a0, 3
    call fac
    sd a0, 0(gp)
    ebreak
fac:
    li t0, 2
    blt a0, t0, base   # taken on the deepest call: squashes the ret
    addi sp, sp, -16
    sd ra, 8(sp)
    sd a0, 0(sp)
    addi a0, a0, -1
    call fac
    ld t1, 0(sp)
    mul a0, a0, t1
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
base:
    li a0, 1
    ret
""", max_cycles=10_000)
        assert soc.cores[0].finished
        assert soc.memory.read(DATA0, 8) == 6


class TestDivStalls:
    def test_divider_occupies_execute_stage(self):
        """The iterative divider blocks EX: a div loop costs roughly
        div_latency per division compared to an add loop."""
        div_cycles = run_asm_single("""
_start:
    li s1, 40
    li t1, 1000000
loop:
    li t2, 3
    div t1, t1, t2
    div t1, t1, t2
    addi s1, s1, -1
    bnez s1, loop
    ebreak
""", max_cycles=50_000).cycle
        add_cycles = run_asm_single("""
_start:
    li s1, 40
    li t1, 1000000
loop:
    li t2, 3
    add t1, t1, t2
    add t1, t1, t2
    addi s1, s1, -1
    bnez s1, loop
    ebreak
""", max_cycles=50_000).cycle
        # 80 divs at ~20 cycles each dominate the div version.
        assert div_cycles > add_cycles + 80 * 15


class TestEcall:
    def test_ecall_halts_like_ebreak(self):
        soc = run_asm_single("""
_start:
    li t0, 9
    sd t0, 0(gp)
    ecall
    li t0, 77
    sd t0, 0(gp)
""")
        assert soc.cores[0].finished
        assert soc.memory.read(DATA0, 8) == 9


class TestIcachePressure:
    def test_program_larger_than_l1i_still_correct(self):
        cfg = SocConfig(core=CoreConfig(
            l1i=CacheConfig(size=256, line_size=32, ways=1, name="l1i")))
        body = ["_start:", "    li s0, 0"]
        for i in range(200):  # 200 adds: ~800B > 256B L1I
            body.append("    addi s0, s0, %d" % (i % 7))
        body.append("    sd s0, 0(gp)")
        body.append("    ebreak")
        soc = run_asm_single("\n".join(body), config=cfg,
                             max_cycles=100_000)
        assert soc.cores[0].finished
        assert soc.memory.read(DATA0, 8) == sum(i % 7
                                                for i in range(200))
        assert soc.cores[0].icache.stats.misses > 5
