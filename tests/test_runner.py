"""Sweep engine tests: determinism, caching, canonical merge order."""

import dataclasses

import pytest

from repro.core.monitor import ReportingMode
from repro.core.signatures import SignatureConfig
from repro.runner import (
    ParallelSweep,
    RunCache,
    RunSpec,
    cell_specs,
    config_digest,
    merge_cell,
    monitor_key,
    program_digest,
    run_key,
    signature_digest,
    sim_config_digest,
    simulation_key,
)
from repro.soc.config import SocConfig
from repro.soc.experiment import RunResult, run_row
from repro.workloads import program

# Fast kernels so the full protocol stays cheap in CI.
KERNELS = ("cosf", "countnegative")
STAGGERS = (0, 100)


def _cells_as_dicts(cells):
    return [dataclasses.asdict(cell) for cell in cells]


def _run_result(**overrides):
    base = dict(benchmark="x", stagger_nops=0, late_core=1, cycles=10,
                committed=5, zero_staggering_cycles=1,
                no_diversity_cycles=2, no_data_diversity_cycles=3,
                no_instruction_diversity_cycles=4, interrupts=0,
                finished=True, ipc=0.5)
    base.update(overrides)
    return RunResult(**base)


# --- canonical spec order / merge semantics ----------------------------------

def test_cell_specs_mirror_run_cell_protocol():
    # stagger 0: repeated runs vary the arbiter start, late core fixed.
    zero = cell_specs("cosf", 0, max_cycles=123)
    assert zero == (RunSpec("cosf", 0, 1, 0, 123),
                    RunSpec("cosf", 0, 1, 1, 123))
    # staggered: one run per late-core choice, arbiter start fixed.
    staggered = cell_specs("cosf", 100, max_cycles=123)
    assert staggered == (RunSpec("cosf", 100, 0, 0, 123),
                         RunSpec("cosf", 100, 1, 0, 123))


def test_merge_cell_takes_max_across_runs():
    runs = [_run_result(zero_staggering_cycles=7, no_diversity_cycles=1),
            _run_result(zero_staggering_cycles=3, no_diversity_cycles=9)]
    cell = merge_cell("x", 0, runs)
    assert cell.zero_staggering_cycles == 7
    assert cell.no_diversity_cycles == 9
    assert cell.runs == runs


# --- determinism: parallel == serial == direct run_row ----------------------

@pytest.mark.slow
def test_parallel_and_serial_sweeps_are_identical(tmp_path):
    reference = {name: run_row(program(name), name,
                               stagger_values=STAGGERS)
                 for name in KERNELS}
    serial = ParallelSweep(jobs=1, use_cache=False)
    parallel = ParallelSweep(jobs=2, use_cache=False)
    serial_rows = serial.run_table(KERNELS, stagger_values=STAGGERS)
    parallel_rows = parallel.run_table(KERNELS, stagger_values=STAGGERS)
    for name in KERNELS:
        ref = _cells_as_dicts(reference[name])
        assert _cells_as_dicts(serial_rows[name]) == ref
        assert _cells_as_dicts(parallel_rows[name]) == ref


# --- run cache ---------------------------------------------------------------

@pytest.mark.slow
def test_second_sweep_hits_cache(tmp_path):
    name = KERNELS[0]
    first = ParallelSweep(jobs=1, cache_dir=tmp_path)
    rows = first.run_table([name], stagger_values=STAGGERS)
    assert first.cache.hits == 0
    assert first.cache.stores == 4  # 2 cells x 2 runs each

    second = ParallelSweep(jobs=1, cache_dir=tmp_path)
    rows_again = second.run_table([name], stagger_values=STAGGERS)
    assert second.cache.hits == 4
    assert second.cache.misses == 0
    assert second.cache.stores == 0
    assert _cells_as_dicts(rows_again[name]) == _cells_as_dicts(rows[name])


@pytest.mark.slow
def test_changed_config_misses_cache(tmp_path):
    name = KERNELS[0]
    sweep = ParallelSweep(jobs=1, cache_dir=tmp_path)
    sweep.run_table([name], stagger_values=(0,))
    assert sweep.cache.stores == 2

    changed = SocConfig()
    changed.data_bases = (0x4000_0000, 0x6000_0000)
    redo = ParallelSweep(jobs=1, cache_dir=tmp_path)
    redo.run_table([name], stagger_values=(0,), config=changed)
    assert redo.cache.hits == 0
    assert redo.cache.misses == 2


def test_run_key_sensitivity():
    prog = program(KERNELS[0])
    prog_dig = program_digest(prog)
    base = dict(benchmark=KERNELS[0], stagger_nops=0, late_core=1,
                rr_start=0, max_cycles=100, mode_value="polling",
                threshold=1)
    key = run_key(prog_dig, None, **base)
    assert key == run_key(prog_dig, None, **base)  # stable
    assert key == run_key(prog_dig, SocConfig(), **base)
    for field, value in [("stagger_nops", 100), ("late_core", 0),
                         ("rr_start", 1), ("max_cycles", 99),
                         ("mode_value", "interrupt_first"),
                         ("threshold", 2)]:
        assert key != run_key(prog_dig, None, **{**base, field: value})
    other_dig = program_digest(program(KERNELS[1]))
    assert key != run_key(other_dig, None, **base)
    assert config_digest(None) == config_digest(SocConfig())


def test_key_split_simulation_vs_monitor():
    """The signature section keys the monitor layer, not the simulation."""
    prog_dig = program_digest(program(KERNELS[0]))
    base = dict(benchmark=KERNELS[0], stagger_nops=0, late_core=1,
                rr_start=0, max_cycles=100)
    plain = SocConfig()
    fancy = SocConfig(signature=SignatureConfig(num_ports=2, ds_depth=3))
    # Different signature geometry: same simulation...
    assert sim_config_digest(plain) == sim_config_digest(fancy)
    sim = simulation_key(prog_dig, sim_config_digest(plain), **base)
    assert sim == simulation_key(prog_dig, sim_config_digest(fancy),
                                 **base)
    # ...but a different monitor key (so run results never collide).
    mk = monitor_key(sim, signature_dig=signature_digest(plain.signature),
                     mode_value="polling", threshold=1)
    assert mk != monitor_key(
        sim, signature_dig=signature_digest(fancy.signature),
        mode_value="polling", threshold=1)
    # A non-signature config change changes the simulation itself.
    moved = SocConfig()
    moved.data_bases = (0x4000_0000, 0x6000_0000)
    assert sim_config_digest(moved) != sim_config_digest(plain)
    # run_key composes the two layers.
    full = run_key(prog_dig, plain, mode_value="polling", threshold=1,
                   **base)
    assert full == mk


def test_cache_survives_corrupt_entry(tmp_path):
    cache = RunCache(tmp_path)
    result = _run_result()
    cache.put("goodkey", result)
    assert cache.get("goodkey") == result
    (tmp_path / "badkey.json").write_text("{not json")
    assert cache.get("badkey") is None
    # The corrupt entry is evicted from disk, not left to miss forever.
    assert cache.evictions == 1
    assert not (tmp_path / "badkey.json").exists()
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0


def test_cache_evicts_stale_schema_entry(tmp_path):
    cache = RunCache(tmp_path)
    (tmp_path / "oldkey.json").write_text(
        '{"schema": 1, "result": {}}')
    assert cache.get("oldkey") is None
    assert cache.evictions == 1
    assert not (tmp_path / "oldkey.json").exists()


@pytest.mark.slow
def test_sweep_capture_then_replay(tmp_path):
    """A captured sweep's traces answer a later sweep with a different
    monitor configuration — bit-identically to live simulation."""
    name = KERNELS[0]
    captured = ParallelSweep(jobs=1, cache_dir=tmp_path, capture=True)
    captured.run_table([name], stagger_values=STAGGERS,
                       max_cycles=20_000)
    assert len(captured._captured_specs) == 4
    assert len(captured.traces) == 4

    # Different monitor config: run-cache misses, trace-cache hits.
    replayer = ParallelSweep(jobs=1, cache_dir=tmp_path, replay=True,
                             mode=ReportingMode.INTERRUPT_THRESHOLD,
                             threshold=4)
    rows = replayer.run_table([name], stagger_values=STAGGERS,
                              max_cycles=20_000)
    assert len(replayer._replayed_specs) == 4

    live = ParallelSweep(jobs=1, use_cache=False,
                         mode=ReportingMode.INTERRUPT_THRESHOLD,
                         threshold=4)
    live_rows = live.run_table([name], stagger_values=STAGGERS,
                               max_cycles=20_000)
    assert _cells_as_dicts(rows[name]) == _cells_as_dicts(live_rows[name])

    # The replayed results were cached: a third sweep is pure hits.
    third = ParallelSweep(jobs=1, cache_dir=tmp_path, replay=True,
                          mode=ReportingMode.INTERRUPT_THRESHOLD,
                          threshold=4)
    third.run_table([name], stagger_values=STAGGERS, max_cycles=20_000)
    assert third.cache.hits == 4
    assert len(third._replayed_specs) == 0
