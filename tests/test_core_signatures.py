"""Data / Instruction signature unit tests (paper Section III-B)."""

import pytest

from repro.core.signatures import (
    DataSignatureUnit,
    InstructionSignatureUnit,
    IsVariant,
    SignatureConfig,
)


def ds_pair(**kwargs):
    config = SignatureConfig(**kwargs)
    return DataSignatureUnit(config), DataSignatureUnit(config)


def is_pair(**kwargs):
    config = SignatureConfig(**kwargs)
    return (InstructionSignatureUnit(config),
            InstructionSignatureUnit(config))


IDLE4 = [(0, 0)] * 4


class TestDataSignature:
    def test_reset_signatures_equal(self):
        a, b = ds_pair()
        assert a.equal(b)
        assert a.signature() == b.signature()

    def test_signature_length(self):
        a, _ = ds_pair(num_ports=4, ds_depth=7)
        assert len(a.signature()) == 28

    def test_different_values_differ(self):
        a, b = ds_pair()
        a.sample([(1, 5)] + IDLE4[:3])
        b.sample([(1, 6)] + IDLE4[:3])
        assert not a.equal(b)

    def test_same_samples_equal(self):
        a, b = ds_pair()
        for _ in range(10):
            a.sample([(1, 7), (1, 8), (0, 0), (0, 0)])
            b.sample([(1, 7), (1, 8), (0, 0), (0, 0)])
        assert a.equal(b)

    def test_timing_difference_detected(self):
        """Same value stream, shifted by one cycle, must differ while
        in the window (the every-cycle sampling rationale)."""
        a, b = ds_pair()
        a.sample([(1, 5)] + IDLE4[:3])
        a.sample(IDLE4)
        b.sample(IDLE4)
        b.sample([(1, 5)] + IDLE4[:3])
        assert not a.equal(b)

    def test_difference_ages_out_of_window(self):
        a, b = ds_pair(ds_depth=3)
        a.sample([(1, 5)] + IDLE4[:3])
        b.sample([(1, 6)] + IDLE4[:3])
        assert not a.equal(b)
        for _ in range(3):
            a.sample(IDLE4)
            b.sample(IDLE4)
        assert a.equal(b)

    def test_hold_freezes_window(self):
        a, b = ds_pair()
        a.sample([(1, 5)] + IDLE4[:3])
        b.sample([(1, 5)] + IDLE4[:3])
        # a holds while b keeps shifting idle samples.
        for _ in range(3):
            a.sample(IDLE4, hold=True)
            b.sample(IDLE4)
        # a still has the (1,5) sample at the newest slot; b aged it.
        assert not a.equal(b)

    def test_extra_ports_ignored(self):
        a, _ = ds_pair(num_ports=2)
        a.sample([(1, 1), (1, 2), (1, 3), (1, 4), (1, 5), (1, 6)])
        assert len(a.signature()) == 2 * a.config.ds_depth

    def test_too_few_ports_rejected(self):
        a, _ = ds_pair(num_ports=4)
        with pytest.raises(ValueError):
            a.sample([(1, 1)])

    def test_activity_only_sampling_misses_timing(self):
        """The ablation mode (sample only on activity) cannot see pure
        timing differences — exactly what the paper warns about."""
        a, b = ds_pair(sample_every_cycle=False)
        a.sample([(1, 5)] + IDLE4[:3])
        a.sample(IDLE4)
        b.sample(IDLE4)
        b.sample([(1, 5)] + IDLE4[:3])
        assert a.equal(b)  # timing lost: identical signatures

    def test_layout_mentions_all_ports(self):
        a, _ = ds_pair(num_ports=3, ds_depth=5)
        layout = a.layout()
        assert "RP_1^1..RP_1^5" in layout
        assert "RP_3^1..RP_3^5" in layout

    def test_signature_bits(self):
        a, _ = ds_pair(num_ports=4, ds_depth=7)
        assert a.signature_bits() == 4 * 7 * 65

    def test_reset(self):
        a, b = ds_pair()
        a.sample([(1, 5)] + IDLE4[:3])
        a.reset()
        assert a.equal(b)


class TestInstructionSignaturePerStage:
    def test_reset_equal(self):
        a, b = is_pair()
        assert a.equal(b)

    def test_same_stages_equal(self):
        a, b = is_pair()
        stages = [(0x13,), None, (0x33, 0x93), None, None, None, None]
        a.sample_stage_words(stages)
        b.sample_stage_words(list(stages))
        assert a.equal(b)

    def test_same_instructions_different_stage_differ(self):
        """The refinement over the plain in-flight list: same words in
        different stages produce different signatures (III-B.2)."""
        a, b = is_pair()
        a.sample_stage_words([(0x33,), None, None, None, None, None,
                              None])
        b.sample_stage_words([None, (0x33,), None, None, None, None,
                              None])
        assert not a.equal(b)

    def test_slot_count_within_stage_matters(self):
        a, b = is_pair()
        a.sample_stage_words([(0x33, 0x13), None, None, None, None,
                              None, None])
        b.sample_stage_words([(0x33,), None, None, None, None, None,
                              None])
        assert not a.equal(b)

    def test_wrong_stage_count_rejected(self):
        a, _ = is_pair(pipeline_stages=7)
        with pytest.raises(ValueError):
            a.sample_stage_words([None] * 5)

    def test_signature_padding(self):
        a, _ = is_pair(pipeline_width=2, pipeline_stages=7)
        a.sample_stage_words([(0x33,), None, None, None, None, None,
                              None])
        sig = a.signature()
        assert len(sig) == 14
        assert sig[0] == (1, 0x33)
        assert sig[1] == (0, 0)

    def test_sample_stages_slot_form(self):
        a, b = is_pair()
        a.sample_stages([[(1, 0x33), (0, 0)]] + [[(0, 0), (0, 0)]] * 6)
        b.sample_stage_words([(0x33,), None, None, None, None, None,
                              None])
        assert a.equal(b)

    def test_hold_keeps_previous_state(self):
        a, b = is_pair()
        stages = [(0x33,), None, None, None, None, None, None]
        a.sample_stage_words(stages)
        b.sample_stage_words(stages)
        a.sample_stage_words([None] * 7, hold=True)
        assert a.equal(b)

    def test_wrong_variant_method_rejected(self):
        a, _ = is_pair()
        with pytest.raises(ValueError):
            a.sample_inflight([1, 2, 3])


class TestInstructionSignatureInflight:
    def test_equal_windows(self):
        a, b = is_pair(is_variant=IsVariant.INFLIGHT)
        a.sample_inflight([1, 2, 3])
        b.sample_inflight([1, 2, 3])
        assert a.equal(b)

    def test_cannot_see_stage_placement(self):
        """The fallback variant's documented weakness: same in-flight
        list, different stages, equal signatures."""
        a, b = is_pair(is_variant=IsVariant.INFLIGHT)
        a.sample_inflight([0x33, 0x13])
        b.sample_inflight([0x33, 0x13])
        assert a.equal(b)

    def test_window_truncates_to_depth(self):
        a, _ = is_pair(is_variant=IsVariant.INFLIGHT, inflight_depth=4)
        a.sample_inflight(list(range(10)))
        assert a.signature() == (6, 7, 8, 9)

    def test_zero_padding(self):
        a, _ = is_pair(is_variant=IsVariant.INFLIGHT, inflight_depth=4)
        a.sample_inflight([5])
        assert a.signature() == (0, 0, 0, 5)

    def test_wrong_variant_method_rejected(self):
        a, _ = is_pair(is_variant=IsVariant.INFLIGHT)
        with pytest.raises(ValueError):
            a.sample_stage_words([None] * 7)

    def test_signature_bits(self):
        a, _ = is_pair(is_variant=IsVariant.INFLIGHT, inflight_depth=14)
        assert a.signature_bits() == 14 * 33
