"""DiversityMonitor unit tests: comparison logic and reporting modes."""

from repro.core.history import HistoryModule
from repro.core.monitor import DiversityMonitor, ReportingMode
from repro.core.signatures import SignatureConfig

IDLE = [(0, 0)] * 6
EMPTY_STAGES = [[(0, 0), (0, 0)]] * 7


def clock_identical(monitor, cycles=1, commits=(0, 0)):
    report = None
    for _ in range(cycles):
        for index in (0, 1):
            monitor.clock_core(index, IDLE, stage_slots=EMPTY_STAGES)
        report = monitor.compare(0, *commits)
    return report


def clock_divergent(monitor, cycles=1):
    report = None
    for _ in range(cycles):
        monitor.clock_core(0, [(1, 0xAAAA)] + IDLE[:5],
                           stage_slots=EMPTY_STAGES)
        monitor.clock_core(1, [(1, 0xBBBB)] + IDLE[:5],
                           stage_slots=EMPTY_STAGES)
        report = monitor.compare(0)
    return report


class TestComparison:
    def test_identical_cores_lack_diversity(self):
        monitor = DiversityMonitor()
        report = clock_identical(monitor)
        assert not report.diversity
        assert monitor.stats.no_diversity_cycles == 1

    def test_data_difference_is_diversity(self):
        monitor = DiversityMonitor()
        report = clock_divergent(monitor)
        assert report.data_diversity
        assert report.diversity
        assert monitor.stats.no_diversity_cycles == 0

    def test_instruction_difference_is_diversity(self):
        monitor = DiversityMonitor()
        monitor.clock_core(0, IDLE, stage_slots=[[(1, 0x33), (0, 0)]]
                           + [[(0, 0), (0, 0)]] * 6)
        monitor.clock_core(1, IDLE, stage_slots=EMPTY_STAGES)
        report = monitor.compare(0)
        assert report.instruction_diversity
        assert not report.data_diversity
        assert report.diversity  # either signature differing suffices

    def test_lack_requires_both_matching(self):
        """No diversity is reported only when DS and IS both match."""
        monitor = DiversityMonitor()
        # DS matches, IS differs
        monitor.clock_core(0, IDLE, stage_slots=[[(1, 1), (0, 0)]]
                           + [[(0, 0), (0, 0)]] * 6)
        monitor.clock_core(1, IDLE, stage_slots=EMPTY_STAGES)
        monitor.compare(0)
        assert monitor.stats.no_diversity_cycles == 0
        assert monitor.stats.no_data_diversity_cycles == 1
        assert monitor.stats.no_instruction_diversity_cycles == 0

    def test_counters_accumulate(self):
        monitor = DiversityMonitor()
        clock_identical(monitor, cycles=5)
        clock_divergent(monitor, cycles=3)
        assert monitor.stats.sampled_cycles == 8
        assert monitor.stats.no_diversity_cycles == 5
        assert monitor.stats.diversity_cycles == 3


class TestReportingModes:
    def test_polling_never_interrupts(self):
        monitor = DiversityMonitor(mode=ReportingMode.POLLING)
        clock_identical(monitor, cycles=10)
        assert monitor.stats.interrupts_raised == 0
        assert not monitor.irq.pending

    def test_interrupt_first_fires_once(self):
        monitor = DiversityMonitor(mode=ReportingMode.INTERRUPT_FIRST)
        clock_identical(monitor, cycles=5)
        assert monitor.stats.interrupts_raised == 1
        assert monitor.irq.pending

    def test_interrupt_first_refires_after_ack(self):
        monitor = DiversityMonitor(mode=ReportingMode.INTERRUPT_FIRST)
        clock_identical(monitor)
        monitor.irq.acknowledge()
        clock_identical(monitor)
        assert monitor.stats.interrupts_raised == 2

    def test_threshold_mode_waits(self):
        monitor = DiversityMonitor(
            mode=ReportingMode.INTERRUPT_THRESHOLD, threshold=4)
        clock_identical(monitor, cycles=3)
        assert not monitor.irq.pending
        clock_identical(monitor)
        assert monitor.irq.pending
        assert monitor.stats.interrupts_raised == 1

    def test_interrupt_handler_subscription(self):
        fired = []
        monitor = DiversityMonitor(mode=ReportingMode.INTERRUPT_FIRST)
        monitor.irq.subscribe(fired.append)
        clock_identical(monitor)
        assert len(fired) == 1

    def test_disabled_monitor_observes_nothing(self):
        monitor = DiversityMonitor()
        monitor.enabled = False

        class FakeCore:
            hold = False
            commits_this_cycle = 0
        monitor.observe(0, FakeCore(), FakeCore())
        assert monitor.stats.sampled_cycles == 0


class TestStaggeringIntegration:
    def test_staggering_tracked(self):
        monitor = DiversityMonitor()
        clock_identical(monitor, commits=(2, 0))
        assert monitor.last_report.staggering == 2
        assert not monitor.last_report.zero_staggering
        clock_identical(monitor, commits=(0, 2))
        assert monitor.last_report.zero_staggering

    def test_history_attached(self):
        history = HistoryModule(bin_size=1, num_bins=8)
        monitor = DiversityMonitor(history=history)
        clock_identical(monitor, cycles=3)
        clock_divergent(monitor, cycles=1)
        monitor.finish()
        hist = history.histograms["no_diversity"]
        assert hist.total_cycles == 3
        assert hist.episodes == 1


class TestManagement:
    def test_reset_clears_everything(self):
        monitor = DiversityMonitor(mode=ReportingMode.INTERRUPT_FIRST,
                                   history=HistoryModule())
        clock_identical(monitor, cycles=3)
        monitor.reset()
        assert monitor.stats.sampled_cycles == 0
        assert not monitor.irq.pending
        assert monitor.instruction_diff.diff == 0

    def test_block_diagram_mentions_components(self):
        monitor = DiversityMonitor(history=HistoryModule())
        text = monitor.block_diagram()
        assert "Signature generator" in text
        assert "Comparators" in text
        assert "Instruction diff" in text
        assert "History module" in text
        assert "APB" in text

    def test_custom_geometry(self):
        config = SignatureConfig(num_ports=2, ds_depth=3)
        monitor = DiversityMonitor(config=config)
        monitor.clock_core(0, [(1, 1), (0, 0)],
                           stage_slots=EMPTY_STAGES)
        monitor.clock_core(1, [(1, 1), (0, 0)],
                           stage_slots=EMPTY_STAGES)
        report = monitor.compare(0)
        assert not report.data_diversity
