"""Area/power model tests (paper Section V-D)."""

from repro.core.overheads import (
    BASELINE_MPSOC_LUTS,
    PAPER_CONFIG,
    PAPER_SAFEDM_LUTS,
    PAPER_SAFEDM_WATTS,
    estimate,
    sweep_ds_depth,
)
from repro.core.signatures import IsVariant, SignatureConfig


class TestPaperDesignPoint:
    def test_luts_match_paper(self):
        report = estimate(PAPER_CONFIG)
        assert report.luts == PAPER_SAFEDM_LUTS == 4000

    def test_area_percent_matches_paper(self):
        report = estimate(PAPER_CONFIG)
        assert abs(report.area_percent - 3.4) < 0.05

    def test_power_matches_paper(self):
        report = estimate(PAPER_CONFIG)
        assert abs(report.watts - PAPER_SAFEDM_WATTS) < 1e-9
        assert report.power_percent < 1.0  # "less than 1% extra power"

    def test_baseline_implied_by_percentage(self):
        assert BASELINE_MPSOC_LUTS == round(4000 / 0.034)


class TestScaling:
    def test_area_grows_with_ds_depth(self):
        reports = sweep_ds_depth([4, 7, 14, 28])
        luts = [r.luts for r in reports]
        assert luts == sorted(luts)
        assert luts[-1] > luts[0]

    def test_area_grows_with_ports(self):
        small = estimate(SignatureConfig(num_ports=2))
        large = estimate(SignatureConfig(num_ports=8))
        assert large.luts > small.luts

    def test_inflight_variant_costs_differently(self):
        per_stage = estimate(SignatureConfig())
        inflight = estimate(SignatureConfig(
            is_variant=IsVariant.INFLIGHT, inflight_depth=14))
        assert per_stage.is_bits_per_core == 7 * 2 * 33
        assert inflight.is_bits_per_core == 14 * 33
        assert per_stage.luts == inflight.luts  # same bit budget here

    def test_power_scales_with_storage(self):
        small = estimate(SignatureConfig(ds_depth=4))
        large = estimate(SignatureConfig(ds_depth=16))
        assert large.watts > small.watts

    def test_report_structure(self):
        report = estimate()
        assert report.ds_bits_per_core == 4 * 7 * 65
        assert report.config is PAPER_CONFIG
