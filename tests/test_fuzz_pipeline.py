"""Pipeline fuzzing: random straight-line programs vs a serial oracle.

The core executes functionally at issue with a readiness scoreboard;
any hazard/forwarding/ordering bug shows up as a divergence from plain
sequential interpretation.  Hypothesis generates random ALU/MUL/DIV/
load/store sequences over a register window; both the simulated core's
final register state and its memory writes must match the oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.exec_unit import execute_alu
from repro.isa import assemble
from repro.isa.decoder import decode
from repro.soc.mpsoc import MPSoC

MASK = (1 << 64) - 1

# Registers the fuzzer may use (avoid gp/sp/tp/ra and x0).
REGS = ["t0", "t1", "t2", "s1", "s2", "s3", "a0", "a1", "a2", "a3"]
REG_INDEX = {"t0": 5, "t1": 6, "t2": 7, "s1": 9, "s2": 18, "s3": 19,
             "a0": 10, "a1": 11, "a2": 12, "a3": 13}

ALU_OPS = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra",
           "slt", "sltu", "mul", "addw", "subw", "div", "rem"]

reg = st.sampled_from(REGS)
alu_instr = st.tuples(st.just("alu"), st.sampled_from(ALU_OPS), reg,
                      reg, reg)
imm_instr = st.tuples(st.just("imm"),
                      st.sampled_from(["addi", "xori", "ori", "andi",
                                       "slti"]),
                      reg, reg, st.integers(-2048, 2047))
shift_instr = st.tuples(st.just("shift"),
                        st.sampled_from(["slli", "srli", "srai"]),
                        reg, reg, st.integers(0, 63))
# Loads/stores over 16 aligned dword slots in the private arena.
mem_instr = st.tuples(st.just("mem"), st.sampled_from(["ld", "sd"]),
                      reg, st.integers(0, 15))

instruction = st.one_of(alu_instr, imm_instr, shift_instr, mem_instr)


def render(instrs):
    lines = ["_start:"]
    # deterministic initial values
    for index, name in enumerate(REGS):
        lines.append("    li %s, %d" % (name, (index + 1) * 0x1234567))
    for item in instrs:
        kind = item[0]
        if kind == "alu":
            _, op, rd, rs1, rs2 = item
            lines.append("    %s %s, %s, %s" % (op, rd, rs1, rs2))
        elif kind in ("imm", "shift"):
            _, op, rd, rs1, imm = item
            lines.append("    %s %s, %s, %d" % (op, rd, rs1, imm))
        else:
            _, op, r, slot = item
            lines.append("    %s %s, %d(gp)" % (op, r, 64 + 8 * slot))
    lines.append("    ebreak")
    return "\n".join(lines)


def oracle(instrs, gp_base):
    """Sequential interpretation of the fuzzed program."""
    regs = {name: ((index + 1) * 0x1234567) & MASK
            for index, name in enumerate(REGS)}
    memory = {}
    for item in instrs:
        kind = item[0]
        if kind == "alu":
            _, op, rd, rs1, rs2 = item
            word = assemble("    %s %s, %s, %s" % (op, rd, rs1, rs2))
            instr = decode(next(word.words())[1])
            regs[rd] = execute_alu(instr, regs[rs1], regs[rs2])
        elif kind in ("imm", "shift"):
            _, op, rd, rs1, imm = item
            word = assemble("    %s %s, %s, %d" % (op, rd, rs1, imm))
            instr = decode(next(word.words())[1])
            regs[rd] = execute_alu(instr, regs[rs1], 0)
        else:
            _, op, r, slot = item
            address = gp_base + 64 + 8 * slot
            if op == "sd":
                memory[address] = regs[r]
            else:
                regs[r] = memory.get(address, 0)
    return regs, memory


@settings(max_examples=25, deadline=None)
@given(instrs=st.lists(instruction, min_size=1, max_size=40))
def test_core_matches_sequential_oracle(instrs):
    soc = MPSoC()
    prog = assemble(render(instrs), base=soc.config.text_base)
    soc.load(prog)
    halt = assemble("_start: ebreak", base=0x0008_0000)
    soc.load(halt)
    soc.start_core(0, prog.entry)
    soc.start_core(1, halt.entry)
    guard = 0
    while not soc.cores[0].finished and guard < 100_000:
        soc.step()
        guard += 1
    assert soc.cores[0].finished

    gp_base = soc.config.data_base(0)
    expected_regs, expected_mem = oracle(instrs, gp_base)
    core = soc.cores[0]
    for name, value in expected_regs.items():
        assert core.regfile.values[REG_INDEX[name]] == value, name
    for address, value in expected_mem.items():
        assert soc.memory.read(address, 8) == value, hex(address)
