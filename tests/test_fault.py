"""Fault-injection tests: models, single injections, CCF campaigns."""

import pytest

from repro.fault.campaign import run_ccf_campaign, spread_cycles
from repro.fault.injector import (
    golden_run,
    inject_common_cause,
    inject_transient,
    shared_address_config,
)
from repro.fault.models import CommonCauseFault, FaultEffect, state_digest
from repro.soc.mpsoc import MPSoC
from repro.workloads import program


PROGRAM = "countnegative"  # short, memory-touching kernel


@pytest.fixture(scope="module")
def golden():
    return golden_run(program(PROGRAM))


class TestFaultModels:
    def test_effect_flips_one_bit(self):
        soc = MPSoC()
        soc.start_redundant(program(PROGRAM))
        for _ in range(50):
            soc.step()
        core = soc.cores[0]
        before = core.regfile.values[5]
        FaultEffect(register=5, bit=3).apply(core)
        assert core.regfile.values[5] == before ^ 8

    def test_x0_flip_absorbed(self):
        soc = MPSoC()
        soc.start_redundant(program(PROGRAM))
        core = soc.cores[0]
        FaultEffect(register=0, bit=3).apply(core)
        assert core.regfile.values[0] == 0

    def test_state_digest_tracks_port_activity(self):
        """Once gp-derived values flow through the ports, the cores'
        activity digests differ (private address spaces)."""
        soc = MPSoC()
        soc.start_redundant(program(PROGRAM))
        differed = False
        for _ in range(100):
            soc.step()
            if state_digest(soc.cores[0]) != state_digest(soc.cores[1]):
                differed = True
        assert differed

    def test_state_digest_deterministic(self):
        soc_a = MPSoC()
        soc_a.start_redundant(program(PROGRAM))
        soc_b = MPSoC()
        soc_b.start_redundant(program(PROGRAM))
        for _ in range(100):
            soc_a.step()
            soc_b.step()
        assert state_digest(soc_a.cores[0]) == state_digest(soc_b.cores[0])

    def test_identical_state_identical_effect(self):
        cfg = shared_address_config()
        soc = MPSoC(config=cfg)
        soc.start_redundant(program(PROGRAM))
        # At cycle 0 both cores are in identical (reset+warm) state.
        fault = CommonCauseFault(cycle=0, stimulus=0x1234)
        e0 = fault.effect_on(soc.cores[0])
        e1 = fault.effect_on(soc.cores[1])
        assert e0 == e1


class TestSingleInjection:
    def test_golden_run_deterministic(self, golden):
        assert golden == golden_run(program(PROGRAM))

    def test_transient_detected_or_masked(self, golden):
        result = inject_transient(program(PROGRAM), cycle=2000, core=0,
                                  register=8, bit=17, golden=golden)
        # s0 is the live checksum register: flipping it mid-run must be
        # caught by output comparison (never silent).
        assert result.classification in ("detected", "masked")

    def test_transient_in_dead_register_masked(self, golden):
        result = inject_transient(program(PROGRAM), cycle=12000, core=0,
                                  register=28, bit=2, golden=golden)
        assert result.classification == "masked"

    def test_common_cause_outcomes_accounted(self, golden):
        """Every private-space CCF is masked, detected, or — when it is
        silent — happened in a cycle SafeDM already flagged."""
        for cycle in (500, 3000, 9000):
            result = inject_common_cause(program(PROGRAM), cycle,
                                         stimulus=0xAB, golden=golden)
            if result.classification == "silent_ccf":
                assert result.diversity_at_injection is False
            else:
                assert result.classification in ("masked", "detected")


class TestCampaign:
    def test_spread_cycles(self):
        cycles = spread_cycles(1000, 4, start=10)
        assert len(cycles) == 4
        assert cycles[0] == 10
        assert all(10 <= c <= 1000 for c in cycles)
        assert cycles == sorted(cycles)

    def test_spread_zero_count(self):
        assert spread_cycles(1000, 0) == []

    def test_private_campaign_no_unflagged_escapes(self):
        result = run_ccf_campaign(program(PROGRAM),
                                  spread_cycles(13000, 5))
        assert result.silent_despite_diversity == 0
        assert result.silent_via_shared_state == 0  # disjoint regions

    def test_no_false_negatives_property(self):
        """The paper's central safety claim, on the vulnerable
        (shared-address) deployment: every identical-effect silent
        escape coincides with a SafeDM lack-of-diversity verdict."""
        result = run_ccf_campaign(program(PROGRAM),
                                  spread_cycles(13000, 8),
                                  stimuli=[0x5EED, 0xBEEF],
                                  config=shared_address_config())
        assert result.silent_despite_diversity == 0

    def test_summary_text(self):
        result = run_ccf_campaign(program(PROGRAM), [100])
        assert "injections=1" in result.summary()
