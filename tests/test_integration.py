"""Cross-module integration tests.

These exercise the claims that emerge only from the full platform:
natural divergence, the staggering-decay trend, the IS-variant
difference, monitor non-intrusiveness, and host-side APB control of a
live run.
"""

import pytest

from repro.core import apb_regs
from repro.core.monitor import ReportingMode
from repro.core.signatures import IsVariant, SignatureConfig
from repro.soc.config import SocConfig
from repro.soc.experiment import run_redundant
from repro.soc.mpsoc import MPSoC
from repro.workloads import program

from conftest import run_workload_cached


class TestNaturalDivergence:
    """Section V-C: serialization on shared resources breaks alignment."""

    def test_zero_stagger_run_still_mostly_diverse(self):
        run = run_workload_cached("countnegative")
        assert run["no_diversity"] < 0.05 * run["sampled"]

    def test_bus_contention_occurs(self):
        soc = MPSoC()
        soc.start_redundant(program("countnegative"))
        soc.run()
        assert soc.bus.stats.contended_grants > 0

    def test_alu_dense_kernel_has_most_no_diversity(self):
        """cubic (mul/div-chain Newton solver) shows the largest lack
        of diversity, like the paper's Table I."""
        cubic = run_workload_cached("cubic")
        others = [run_workload_cached(n)
                  for n in ("bitonic", "countnegative", "iir")]
        assert all(cubic["no_diversity"] > o["no_diversity"] * 5
                   for o in others)


class TestStaggeringDecay:
    """The Table I trend on selected benchmarks."""

    @pytest.mark.parametrize("name", ["countnegative", "bitonic"])
    def test_stagger_10000_vanishes(self, name):
        staggered = run_workload_cached(name, stagger_nops=10000)
        assert staggered["finished"]
        assert staggered["zero_staggering"] == 0
        assert staggered["no_diversity"] == 0

    def test_decay_across_stagger_values(self):
        base = run_workload_cached("countnegative", 0)
        s100 = run_workload_cached("countnegative", 100)
        s10000 = run_workload_cached("countnegative", 10000)
        assert s10000["no_diversity"] <= s100["no_diversity"] \
            <= base["no_diversity"]

    def test_staggered_results_still_correct(self):
        run = run_workload_cached("bitonic", stagger_nops=1000)
        assert run["checksum0"] == run["checksum1"] == run["expected"]


class TestIsVariantDifference:
    """III-B.2: the per-stage IS is strictly stronger than the
    in-flight fallback."""

    def _run(self, variant):
        cfg = SocConfig(signature=SignatureConfig(is_variant=variant))
        return run_redundant(program("cubic"), benchmark="cubic",
                             config=cfg)

    def test_fallback_reports_at_least_as_many_instr_matches(self):
        per_stage = self._run(IsVariant.PER_STAGE)
        inflight = self._run(IsVariant.INFLIGHT)
        assert inflight.no_instruction_diversity_cycles >= \
            per_stage.no_instruction_diversity_cycles
        assert inflight.no_diversity_cycles >= \
            per_stage.no_diversity_cycles


class TestNonIntrusiveness:
    """SafeDM 'quantifies diversity ... without interfering with
    execution': the monitored run is cycle-identical to an unmonitored
    one."""

    def test_monitor_does_not_change_timing(self):
        monitored = MPSoC()
        monitored.start_redundant(program("countnegative"))
        monitored.run()

        unmonitored = MPSoC()
        unmonitored.safedm.enabled = False
        unmonitored.start_redundant(program("countnegative"))
        unmonitored.run()

        assert monitored.cycle == unmonitored.cycle
        for index in (0, 1):
            assert monitored.cores[index].stats.committed == \
                unmonitored.cores[index].stats.committed


class TestHostControlViaApb:
    """The testbench role: program SafeDM over APB mid-run."""

    def test_reprogram_mode_during_run(self):
        soc = MPSoC()
        soc.start_redundant(program("cubic"))
        # switch to threshold mode with a low threshold via APB
        soc.apb_write(apb_regs.CTRL, 0b101)
        soc.apb_write(apb_regs.THRESHOLD, 10)
        soc.run()
        assert soc.safedm.mode is ReportingMode.INTERRUPT_THRESHOLD
        assert soc.apb_read(apb_regs.STATUS) & 1  # irq pending
        assert soc.safedm.stats.interrupts_raised == 1
        # counters visible over APB match internal state
        assert soc.apb_read(apb_regs.NODIV) == \
            soc.safedm.stats.no_diversity_cycles

    def test_histogram_readout_after_run(self):
        soc = MPSoC(history_bin_size=8, history_bins=16)
        soc.start_redundant(program("cubic"))
        soc.run()
        total = 0
        for index in range(16):
            soc.apb_write(apb_regs.HIST_SEL, (2 << 8) | index)
            total += soc.apb_read(apb_regs.HIST_DATA)
        hist = soc.safedm.history.histograms["no_diversity"]
        assert total == hist.episodes
        assert hist.total_cycles == soc.safedm.stats.no_diversity_cycles


class TestSharedTextPrivateData:
    """Both cores run one text image with private data: the address-
    space diversity source of Section V-C."""

    def test_data_written_to_both_regions(self):
        soc = MPSoC()
        soc.start_redundant(program("bitonic"))
        soc.run()
        cfg = soc.config
        arr0 = soc.memory.read_blob(cfg.data_bases[0] + 64, 64 * 8)
        arr1 = soc.memory.read_blob(cfg.data_bases[1] + 64, 64 * 8)
        assert arr0 == arr1            # same computation
        assert cfg.data_bases[0] != cfg.data_bases[1]

    def test_interrupt_first_mode_end_to_end(self):
        soc = MPSoC(mode=ReportingMode.INTERRUPT_FIRST)
        fired = []
        soc.safedm.irq.subscribe(fired.append)
        soc.start_redundant(program("cubic"))
        soc.run()
        assert len(fired) == 1  # raised once, held pending
