"""Static diversity estimator vs the measured DiversityMonitor.

The contract: on every (kernel, stagger) scenario the preconditions
accept, the per-window and total lower bounds on instruction-diverse
cycles are ≤ what the monitor actually measured.  Simulation is the
oracle, so the validated pairs are kept few but real; the precondition
and bookkeeping paths are covered statically.
"""

import pytest

from repro.isa.assembler import assemble
from repro.lint.diversity import (
    DEFAULT_WINDOW,
    WARMUP_CYCLES,
    DiversityWindow,
    StaticDiversityBound,
    measure_instruction_diversity,
    predict_instruction_diversity,
    refill_budget_per_line,
    validate_bound,
)
from repro.workloads import program

BASE = 0x0001_0000

#: (kernel, stagger) scenarios validated against simulation.
VALIDATED = [
    ("countnegative", 2000),
    ("fac", 1200),
    ("countnegative", 600),
]


class TestPreconditions:
    def test_zero_stagger_claims_nothing(self):
        bound = predict_instruction_diversity(program("countnegative"),
                                              stagger=0)
        assert bound.holds
        assert bound.windows == []
        assert bound.total_lower_bound == 0

    def test_nop_in_text_refuses(self):
        prog = assemble("""
_start:
    nop
    ebreak
""", base=BASE)
        bound = predict_instruction_diversity(prog, stagger=2000)
        assert not bound.holds
        assert "nop" in bound.reason

    def test_tiny_stagger_yields_empty_window(self):
        bound = predict_instruction_diversity(program("countnegative"),
                                              stagger=8)
        assert bound.holds
        assert bound.windows == []
        assert bound.total_lower_bound == 0

    def test_horizon_clamps_the_window(self):
        prog = program("countnegative")
        free = predict_instruction_diversity(prog, stagger=2000)
        clamped = predict_instruction_diversity(prog, stagger=2000,
                                                horizon=200)
        assert clamped.window_end == 200
        assert clamped.window_end < free.window_end
        assert clamped.total_lower_bound <= free.total_lower_bound


class TestBoundShape:
    def test_windows_partition_the_span(self):
        bound = predict_instruction_diversity(program("countnegative"),
                                              stagger=2000)
        assert bound.holds and bound.windows
        assert bound.windows[0].start == WARMUP_CYCLES
        assert bound.windows[-1].end == bound.window_end
        for prev, nxt in zip(bound.windows, bound.windows[1:]):
            assert prev.end == nxt.start
            assert prev.length == DEFAULT_WINDOW
        assert bound.refill_budget == \
            bound.text_lines * refill_budget_per_line()

    def test_to_dict_is_json_ready(self):
        import json
        bound = predict_instruction_diversity(program("fac"),
                                              stagger=1200)
        doc = json.loads(json.dumps(bound.to_dict()))
        assert doc["stagger"] == 1200
        assert doc["holds"] is True
        assert len(doc["windows"]) == len(bound.windows)


class TestValidatedAgainstSimulation:
    @pytest.mark.parametrize("name,stagger", VALIDATED)
    def test_bound_below_measurement(self, name, stagger):
        prog = program(name)
        verdicts = measure_instruction_diversity(prog, stagger)
        bound = predict_instruction_diversity(
            prog, stagger=stagger, horizon=len(verdicts))
        assert bound.holds, bound.reason
        ok, detail = validate_bound(bound, verdicts)
        assert ok, detail

    def test_large_stagger_bound_is_nontrivial(self):
        prog = program("countnegative")
        verdicts = measure_instruction_diversity(prog, 2000)
        bound = predict_instruction_diversity(
            prog, stagger=2000, horizon=len(verdicts))
        assert bound.total_lower_bound > 0


class TestValidateBound:
    def test_detects_window_violation(self):
        bound = StaticDiversityBound(
            stagger=100, holds=True, reason="", text_words=1,
            text_lines=1, refill_budget=0, window_start=0,
            window_end=4,
            windows=[DiversityWindow(start=0, end=4, lower_bound=3)],
            total_lower_bound=3)
        ok, detail = validate_bound(bound, [1, 1, 0, 0])
        assert not ok
        assert "window" in detail

    def test_detects_total_violation(self):
        bound = StaticDiversityBound(
            stagger=100, holds=True, reason="", text_words=1,
            text_lines=1, refill_budget=0, window_start=0,
            window_end=4, windows=[], total_lower_bound=4)
        ok, detail = validate_bound(bound, [1, 1, 1, 0])
        assert not ok
        assert "total" in detail

    def test_accepts_satisfied_bound(self):
        bound = StaticDiversityBound(
            stagger=100, holds=True, reason="", text_words=1,
            text_lines=1, refill_budget=0, window_start=0,
            window_end=4,
            windows=[DiversityWindow(start=0, end=4, lower_bound=2)],
            total_lower_bound=2)
        ok, _ = validate_bound(bound, [1, 1, 1, 0])
        assert ok
