"""Workload dynamic-profile pins.

Table I's per-benchmark variety comes from each kernel's dynamic
character (memory-dense vs ALU-dense vs divider-bound).  These tests
pin those profiles so a kernel edit that silently changes its character
— and hence its Table I row — fails loudly.
"""

import pytest

from repro.soc.mpsoc import MPSoC
from repro.workloads import TACLE_KERNELS, program

_PROFILES = {}


def profile(name):
    if name not in _PROFILES:
        soc = MPSoC()
        soc.start_redundant(program(name))
        soc.run(max_cycles=2_000_000)
        _PROFILES[name] = soc.cores[0].stats
    return _PROFILES[name]


class TestMemoryCharacter:
    @pytest.mark.parametrize("name", ["pm", "bsort", "insertsort",
                                      "quicksort", "complex_updates"])
    def test_memory_dense_kernels(self, name):
        assert profile(name).memory_fraction > 0.15, name

    def test_matrix1_is_mixed(self):
        """matrix1's index arithmetic (one mul per element address)
        dilutes its memory fraction into the mixed regime."""
        stats = profile("matrix1")
        assert 0.05 < stats.memory_fraction < 0.20
        assert stats.committed_muldiv > 0.10 * stats.committed

    @pytest.mark.parametrize("name", ["cubic", "prime", "bitcount"])
    def test_register_dense_kernels(self, name):
        """The paper's no-diversity-heavy profile: little memory
        traffic in the steady state."""
        assert profile(name).memory_fraction < 0.10, name


class TestDividerCharacter:
    @pytest.mark.parametrize("name", ["prime", "cubic", "ludcmp",
                                      "minver"])
    def test_divider_bound_kernels(self, name):
        stats = profile(name)
        assert stats.committed_muldiv > 0.01 * stats.committed, name
        # divider occupancy keeps IPC low
        assert stats.ipc < 1.0, name

    @pytest.mark.parametrize("name", ["bitcount", "bsort", "pm"])
    def test_divider_free_kernels(self, name):
        """No divider in the hot loop; the residual mul/div share is
        the per-value LCG multiply of the fill phase."""
        stats = profile(name)
        assert stats.committed_muldiv < 0.03 * stats.committed, name


class TestControlCharacter:
    @pytest.mark.parametrize("name", ["binarysearch", "bitcount",
                                      "recursion"])
    def test_branchy_kernels(self, name):
        stats = profile(name)
        assert stats.committed_branches > 0.10 * stats.committed, name


class TestScale:
    @pytest.mark.parametrize("name", TACLE_KERNELS)
    def test_dynamic_size_within_simulation_budget(self, name):
        """Kernels stay within the scaled 10^4-10^5-cycle envelope the
        design document commits to."""
        stats = profile(name)
        assert 5_000 <= stats.cycles <= 120_000, \
            "%s ran %d cycles" % (name, stats.cycles)
        assert stats.committed >= 4_000, name
