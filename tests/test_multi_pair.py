"""Multi-pair monitoring on a 4-core platform.

The paper's contribution list integrates SafeDM "in a 4-core multicore
by Cobham Gaisler"; its conclusions motivate "independent cores that
can be used for lockstepped execution opportunistically".  These tests
run two redundant tasks on two monitored pairs simultaneously, each
with its own SafeDM instance on the shared APB bridge.
"""

import pytest

from repro.core import apb_regs
from repro.soc.config import SocConfig
from repro.soc.mpsoc import MPSoC
from repro.workloads import program, workload


def four_core_config():
    return SocConfig(num_cores=4,
                     data_bases=(0x4000_0000, 0x5000_0000,
                                 0x6000_0000, 0x7000_0000))


def make_quad():
    return MPSoC(config=four_core_config(),
                 monitor_pairs=((0, 1), (2, 3)))


class TestConstruction:
    def test_two_monitors_two_slaves(self):
        soc = make_quad()
        assert len(soc.monitors) == 2
        assert soc.safedm is soc.monitors[0]
        assert set(soc.apb.slaves()) == {"safedm0", "safedm1"}

    def test_bad_pair_rejected(self):
        with pytest.raises(ValueError):
            MPSoC(config=four_core_config(),
                  monitor_pairs=((0, 1), (2, 9)))
        with pytest.raises(ValueError):
            MPSoC(monitor_pairs=((0, 1, 2),))


class TestTwoRedundantTasks:
    @pytest.fixture(scope="class")
    def quad_run(self):
        soc = make_quad()
        # Different programs at different text bases, one per pair.
        prog_a = program("bitonic")
        prog_b = program("countnegative", base=0x0003_0000)
        soc.start_redundant(prog_a, pair=0)
        soc.start_redundant(prog_b, pair=1)
        soc.run()
        return soc

    def test_all_four_cores_finish_correct(self, quad_run):
        soc = quad_run
        cfg = soc.config
        expected_a = workload("bitonic").expected_checksum
        expected_b = workload("countnegative").expected_checksum
        assert soc.memory.read(cfg.data_base(0), 8) == expected_a
        assert soc.memory.read(cfg.data_base(1), 8) == expected_a
        assert soc.memory.read(cfg.data_base(2), 8) == expected_b
        assert soc.memory.read(cfg.data_base(3), 8) == expected_b

    def test_monitors_observe_their_own_pairs(self, quad_run):
        soc = quad_run
        stats_a = soc.monitors[0].stats
        stats_b = soc.monitors[1].stats
        assert stats_a.sampled_cycles > 0
        assert stats_b.sampled_cycles > 0
        # Different programs finish at different times: windows differ.
        assert stats_a.sampled_cycles != stats_b.sampled_cycles

    def test_per_pair_apb_readout(self, quad_run):
        soc = quad_run
        base0 = soc._slave_bases[0]
        base1 = soc._slave_bases[1]
        nodiv0 = soc.apb.read(base0 + apb_regs.NODIV)
        nodiv1 = soc.apb.read(base1 + apb_regs.NODIV)
        assert nodiv0 == soc.monitors[0].stats.no_diversity_cycles
        assert nodiv1 == soc.monitors[1].stats.no_diversity_cycles

    def test_cross_pair_contention_vs_isolated_runs(self, quad_run):
        """Four cores share one bus: each task runs slower than it
        would alone on the 2-core platform."""
        alone = MPSoC()
        alone.start_redundant(program("bitonic"))
        alone.run()
        # bitonic's pair in the quad had to share the bus with pair 1.
        assert quad_run.cycle >= alone.cycle


class TestEngineTier:
    """The fast engine on a multi-pair MPSoC (the 'multi' span) is
    bit-identical to the reference interpreter."""

    def _run(self, engine):
        from repro.engine import run_soc
        soc = make_quad()
        soc.start_redundant(program("bitonic"), pair=0)
        soc.start_redundant(program("countnegative", base=0x0003_0000),
                            pair=1)
        cycles, stats = run_soc(soc, engine=engine)
        return soc, cycles, stats

    def test_fast_tier_accepts_multi_pair(self):
        _, _, stats = self._run("fast")
        assert stats.fallback_reason is None
        assert stats.fast_cycles > 0

    def test_fast_bit_identical_to_reference(self):
        ref_soc, ref_cycles, _ = self._run("reference")
        fast_soc, fast_cycles, _ = self._run("fast")
        assert fast_cycles == ref_cycles
        for ref_core, fast_core in zip(ref_soc.cores, fast_soc.cores):
            assert fast_core.regfile.values == ref_core.regfile.values
            assert fast_core.stats.committed == ref_core.stats.committed
        for ref_mon, fast_mon in zip(ref_soc.monitors,
                                     fast_soc.monitors):
            assert fast_mon.stats == ref_mon.stats
            assert (fast_mon.instruction_diff.stats
                    == ref_mon.instruction_diff.stats)
