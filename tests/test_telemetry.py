"""Telemetry subsystem tests: registry semantics, exports, and the
observational-purity guarantee (instrumentation never changes what the
simulator computes)."""

import dataclasses
import json

import pytest

from repro.cli import format_columns, main
from repro.runner import ParallelSweep
from repro.soc.experiment import run_redundant
from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    NULL_METRIC,
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    Tracer,
    load_snapshot,
    parse_prometheus,
    registry_from_snapshot,
    snapshot,
    snapshot_rows,
    to_prometheus,
    write_snapshot,
)
from repro.trace.signature_trace import SignatureSample, SignatureTrace
from repro.workloads import program

KERNEL = "cosf"


# --- registry primitives -----------------------------------------------------

class TestRegistry:
    def test_counter_accumulates_and_is_shared(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_hits_total")
        c.inc()
        c.inc(4)
        assert reg.counter("repro_test_hits_total") is c
        assert reg.value("repro_test_hits_total") == 5

    def test_labels_canonicalize(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_test_hits_total",
                        (("core", "0"), ("cache", "l1d")))
        b = reg.counter("repro_test_hits_total",
                        {"cache": "l1d", "core": 0})
        assert a is b
        assert a.labels == (("cache", "l1d"), ("core", "0"))

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_test_depth")
        g.set(3)
        g.set(7)
        g.inc()
        assert reg.value("repro_test_depth") == 8

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.1, 0.5, 2.0):
            h.observe(v)
        # bisect_left: an observation equal to a bound lands in that
        # bound's bucket (le="0.1" includes 0.1).
        assert h.counts == [2, 1, 1]
        assert h.cumulative_counts() == [2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(2.65)

    def test_histogram_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("repro_test_seconds", buckets=(1.0, 0.1))

    def test_name_scheme_enforced(self):
        reg = MetricsRegistry()
        for bad in ("hits_total", "repro_", "repro_Test_hits",
                    "other_cpu_cycles_total"):
            with pytest.raises(ValueError):
                reg.counter(bad)

    def test_kind_conflicts_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_hits_total")
        with pytest.raises(ValueError):
            reg.gauge("repro_test_hits_total")

    def test_counter_values_only_counters(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_hits_total").inc(2)
        reg.gauge("repro_test_depth").set(9)
        reg.histogram("repro_test_seconds").observe(0.1)
        assert reg.counter_values() == {
            ("repro_test_hits_total", ()): 2}

    def test_len_and_iter(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_b_total")
        reg.counter("repro_test_a_total")
        assert len(reg) == 2
        assert [m.name for m in reg] == ["repro_test_a_total",
                                         "repro_test_b_total"]


class TestNullObjects:
    def test_null_registry_records_nothing(self):
        assert NULL_REGISTRY.counter("repro_test_hits_total") is NULL_METRIC
        NULL_REGISTRY.counter("repro_test_hits_total").inc(5)
        NULL_REGISTRY.gauge("repro_test_depth").set(1)
        NULL_REGISTRY.histogram("repro_test_seconds").observe(0.1)
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.counter_values() == {}
        assert NULL_REGISTRY.value("repro_test_hits_total", default=7) == 7
        assert not NullRegistry.enabled

    def test_null_registry_skips_name_validation(self):
        # The disabled path must cost nothing — not even a regex match.
        NULL_REGISTRY.counter("not even a metric name").inc()

    def test_null_tracer(self):
        with NULL_TRACER.span("anything", detail=1):
            pass
        NULL_TRACER.add_event("x", 0.0, 1.0)
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.now() == 0.0
        assert NULL_TRACER.total_seconds() == 0.0
        assert isinstance(NULL_TRACER, NullTracer)


# --- tracer ------------------------------------------------------------------

class TestTracer:
    def test_spans_and_chrome_export(self):
        clock = iter([0.0, 1.0, 1.5, 2.0, 4.5]).__next__
        tracer = Tracer(clock=clock)  # origin consumes 0.0
        with tracer.span("outer", category="test", kernel=KERNEL):
            with tracer.span("inner"):
                pass
        assert len(tracer) == 2
        inner, outer = tracer.events
        assert (inner.name, outer.name) == ("inner", "outer")
        assert outer.start == pytest.approx(1.0)
        assert outer.duration == pytest.approx(3.5)
        assert tracer.total_seconds("inner") == pytest.approx(0.5)
        doc = tracer.to_chrome_trace()
        assert {e["ph"] for e in doc["traceEvents"]} == {"X"}
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        assert by_name["outer"]["ts"] == pytest.approx(1.0e6)
        assert by_name["outer"]["dur"] == pytest.approx(3.5e6)
        assert by_name["outer"]["args"] == {"kernel": KERNEL}

    def test_save_is_loadable_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        path = tmp_path / "t.json"
        tracer.save(str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 1


# --- exports -----------------------------------------------------------------

def _populated_registry():
    reg = MetricsRegistry()
    reg.counter("repro_test_hits_total", (("core", "0"),)).inc(3)
    reg.counter("repro_test_hits_total", (("core", "1"),)).inc(5)
    reg.gauge("repro_test_depth").set(2.5)
    h = reg.histogram("repro_test_seconds", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.7)
    h.observe(9.0)
    return reg


class TestExports:
    def test_prometheus_rendering(self):
        text = to_prometheus(_populated_registry())
        assert "# TYPE repro_test_hits_total counter" in text
        assert 'repro_test_hits_total{core="0"} 3' in text
        assert "# TYPE repro_test_seconds histogram" in text
        assert 'repro_test_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_test_seconds_count 3" in text
        samples = parse_prometheus(text)
        assert samples['repro_test_hits_total{core="1"}'] == 5
        assert samples['repro_test_seconds_bucket{le="1.0"}'] == 2

    def test_snapshot_round_trip(self, tmp_path):
        reg = _populated_registry()
        path = tmp_path / "snap.json"
        write_snapshot(reg, str(path), meta={"command": "test"})
        doc = load_snapshot(str(path))
        assert doc["meta"] == {"command": "test"}
        rebuilt = registry_from_snapshot(doc)
        assert snapshot(rebuilt) == snapshot(reg)
        assert to_prometheus(rebuilt) == to_prometheus(reg)

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 999, "metrics": []}')
        with pytest.raises(ValueError):
            load_snapshot(str(path))

    def test_snapshot_rows(self):
        rows = snapshot_rows(snapshot(_populated_registry()))
        names = [name for name, _, _ in rows]
        assert 'repro_test_hits_total{core="0"}' in names
        hist = next(r for r in rows if r[1] == "histogram")
        assert "count=3" in hist[2]


# --- observational purity: runs are bit-identical with telemetry on ----------

@pytest.mark.slow
class TestRunInstrumentation:
    def test_run_identical_with_and_without_telemetry(self):
        prog = program(KERNEL)
        bare = run_redundant(prog, benchmark=KERNEL)
        reg = MetricsRegistry()
        tracer = Tracer()
        observed = run_redundant(prog, benchmark=KERNEL, metrics=reg,
                                 tracer=tracer)
        assert dataclasses.asdict(observed) == dataclasses.asdict(bare)
        # The acceptance-criteria metric families are all non-zero.
        assert reg.value("repro_soc_cycles_total") == bare.cycles
        assert reg.value("repro_monitor_sampled_cycles_total",
                         (("pair", "0"),)) > 0
        assert reg.value("repro_monitor_no_diversity_cycles_total",
                         (("pair", "0"),)) == bare.no_diversity_cycles
        assert reg.value("repro_cache_hits_total",
                         (("cache", "l1i"), ("core", "0"))) > 0
        assert reg.value("repro_bus_grant_wait_cycles_total") > 0
        assert reg.value("repro_cpu_decode_cache_hits_total",
                         (("core", "0"),)) > 0
        span_names = {e.name for e in tracer.events}
        assert {"soc_build", "load_program",
                "cycle_loop"} <= span_names

    def test_signature_trace_bridge_matches_run(self):
        from repro.soc.mpsoc import MPSoC
        from repro.trace.signature_trace import capture_signature_trace
        prog = program(KERNEL)
        bare = run_redundant(prog, benchmark=KERNEL)
        soc = MPSoC()
        soc.start_redundant(prog)
        trace = capture_signature_trace(soc, max_cycles=200_000)
        assert len(trace) > 0
        assert next(iter(trace)).cycle == 0
        reg = MetricsRegistry()
        trace.to_metrics(reg)
        assert reg.value("repro_trace_no_diversity_cycles_total") == \
            bare.no_diversity_cycles
        assert reg.value("repro_trace_zero_staggering_cycles_total") == \
            bare.zero_staggering_cycles


class TestSignatureTraceProtocol:
    def test_len_iter_and_metrics(self):
        trace = SignatureTrace()
        rows = [(0, True, True, 3), (1, False, True, 0),
                (2, False, False, 0), (3, False, False, 1),
                (9, True, False, 2)]
        for cycle, data, instr, stag in rows:
            trace.append(SignatureSample(cycle, data, instr, stag))
        assert len(trace) == 5
        assert [s.cycle for s in trace] == [0, 1, 2, 3, 9]
        reg = MetricsRegistry()
        trace.to_metrics(reg)
        values = {k[0]: v for k, v in reg.counter_values().items()}
        assert values["repro_trace_samples_total"] == 5
        assert values["repro_trace_no_data_diversity_cycles_total"] == 3
        assert values["repro_trace_no_instruction_diversity_cycles_total"] \
            == 3
        assert values["repro_trace_no_diversity_cycles_total"] == 2
        assert values["repro_trace_zero_staggering_cycles_total"] == 2
        assert values["repro_trace_no_diversity_episodes_total"] == 1
        assert reg.value(
            "repro_trace_longest_no_diversity_episode") == 2


# --- sweep metrics: schedule-independent counters ----------------------------

@pytest.mark.slow
class TestSweepMetrics:
    WORK = [(KERNEL, 0), (KERNEL, 100)]

    def _sweep_counters(self, jobs):
        reg = MetricsRegistry()
        sweep = ParallelSweep(jobs=jobs, use_cache=False, metrics=reg)
        sweep.run_cells(self.WORK, max_cycles=200_000)
        return reg

    def test_counters_identical_across_job_counts(self):
        serial = self._sweep_counters(jobs=1)
        pooled = self._sweep_counters(jobs=4)
        assert serial.counter_values() == pooled.counter_values()
        assert serial.value("repro_runner_runs_total") == 4
        assert serial.value("repro_runner_executed_total") == 4
        assert serial.value("repro_runner_simulated_cycles_total") > 0
        # Schedule-dependent telemetry lives in gauges, not counters.
        assert serial.value("repro_runner_jobs") == 1
        assert pooled.value("repro_runner_jobs") == 4
        assert 0 < serial.value("repro_runner_worker_utilization") <= 1.0
        hist = serial.get("repro_runner_run_seconds")
        assert hist.count == 4

    def test_cache_hits_counted(self, tmp_path):
        for expect_hits in (0, 4):
            reg = MetricsRegistry()
            sweep = ParallelSweep(jobs=1, cache_dir=tmp_path,
                                  metrics=reg)
            sweep.run_cells(self.WORK, max_cycles=200_000)
            assert reg.value("repro_runner_cache_hits_total") == \
                expect_hits
            assert reg.value("repro_runner_executed_total") == \
                4 - expect_hits
            assert reg.value("repro_runner_runs_total") == 4


class TestSerialFallback:
    def test_single_cpu_host_clamps_to_serial(self, monkeypatch):
        import repro.runner.sweep as sweep_mod
        monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 1)
        sweep = ParallelSweep()
        assert sweep.jobs == 1
        assert sweep.serial_fallback

    def test_multi_cpu_host_uses_all_cores(self, monkeypatch):
        import repro.runner.sweep as sweep_mod
        monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 8)
        sweep = ParallelSweep()
        assert sweep.jobs == 8
        assert not sweep.serial_fallback

    def test_explicit_jobs_never_clamped(self, monkeypatch):
        import repro.runner.sweep as sweep_mod
        monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 1)
        sweep = ParallelSweep(jobs=4)
        assert sweep.jobs == 4
        assert not sweep.serial_fallback

    def test_fallback_recorded_as_gauge(self, monkeypatch):
        import repro.runner.sweep as sweep_mod
        monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 2)
        reg = MetricsRegistry()
        sweep = ParallelSweep(use_cache=False, metrics=reg)
        sweep.run_cells([(KERNEL, 0)], max_cycles=200_000)
        assert reg.value("repro_runner_serial_fallback") == 1


# --- fault campaign metrics --------------------------------------------------

@pytest.mark.slow
def test_campaign_metrics():
    from repro.fault import run_ccf_campaign, spread_cycles
    reg = MetricsRegistry()
    tracer = Tracer()
    result = run_ccf_campaign(program(KERNEL),
                              spread_cycles(12_000, 3),
                              max_cycles=200_000, metrics=reg,
                              tracer=tracer)
    total = sum(
        reg.value("repro_fault_injections_total",
                  (("classification", cls),))
        for cls in ("masked", "detected", "silent_ccf", "hang"))
    assert total == len(result.injections) == 3
    names = [e.name for e in tracer.events]
    assert names.count("golden_run") == 1
    assert names.count("inject") == 3


# --- CLI ---------------------------------------------------------------------

class TestFormatColumns:
    def test_pads_all_but_last_column(self):
        text = format_columns([("a", "b", "long tail here"),
                               ("longer-name", "c", "x")],
                              headers=("h1", "h2", "h3"))
        lines = text.splitlines()
        assert lines[0].startswith("h1")
        assert set(lines[1]) == {"-"}
        assert lines[2].index("b") == lines[3].index("c")
        # Last column is not padded.
        assert not lines[3].endswith(" ")

    def test_empty(self):
        assert format_columns([]) == ""


@pytest.mark.slow
class TestCliTelemetry:
    def test_run_writes_metrics_and_trace(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.json"
        assert main(["run", KERNEL, "--metrics", str(metrics_path),
                     "--trace", str(trace_path)]) == 0
        doc = load_snapshot(str(metrics_path))
        assert doc["meta"]["kernel"] == KERNEL
        reg = registry_from_snapshot(doc)
        assert reg.value("repro_soc_cycles_total") > 0
        trace_doc = json.loads(trace_path.read_text())
        assert any(e["name"] == "cycle_loop"
                   for e in trace_doc["traceEvents"])

    def test_metrics_command_pretty_prints(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        assert main(["run", KERNEL, "--metrics", str(path)]) == 0
        capsys.readouterr()
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro_soc_cycles_total" in out
        assert "counter" in out
        assert "# command=run" in out

    def test_campaign_command(self, tmp_path, capsys):
        path = tmp_path / "c.json"
        assert main(["campaign", KERNEL, "--injections", "2",
                     "--metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "injections=2" in out
        reg = registry_from_snapshot(load_snapshot(str(path)))
        assert reg.value("repro_fault_injections_total",
                         (("classification", "masked"),)) is not None


def test_default_time_buckets_sorted():
    assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)
