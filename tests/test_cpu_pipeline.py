"""Pipeline building-block tests: groups, pairing rules, predictor."""

import pytest

from repro.cpu.pipeline import BranchPredictor, Group, can_pair
from repro.isa.decoder import decode
from repro.isa.encoder import encode
from repro.isa.instruction import FetchedInstruction, Instruction
from repro.isa.opcodes import SPECS


def fi(name, rd=None, rs1=None, rs2=None, imm=0, pc=0):
    instr = Instruction(SPECS[name], rd=rd, rs1=rs1, rs2=rs2, imm=imm)
    word = encode(instr)
    return FetchedInstruction(instr=decode(word), pc=pc)


class TestCanPair:
    def test_independent_alu_pair(self):
        assert can_pair(fi("add", rd=5, rs1=1, rs2=2),
                        fi("add", rd=6, rs1=3, rs2=4))

    def test_raw_dependency_blocks(self):
        assert not can_pair(fi("add", rd=5, rs1=1, rs2=2),
                            fi("add", rd=6, rs1=5, rs2=4))

    def test_waw_blocks(self):
        assert not can_pair(fi("add", rd=5, rs1=1, rs2=2),
                            fi("add", rd=5, rs1=3, rs2=4))

    def test_x0_not_a_dependency(self):
        # both write x0: no WAW, no RAW
        assert can_pair(fi("add", rd=0, rs1=1, rs2=2),
                        fi("add", rd=0, rs1=3, rs2=4))

    def test_two_memory_ops_block(self):
        assert not can_pair(fi("ld", rd=5, rs1=1),
                            fi("sd", rs1=2, rs2=3))

    def test_memory_plus_alu_ok(self):
        assert can_pair(fi("ld", rd=5, rs1=1),
                        fi("add", rd=6, rs1=2, rs2=3))

    def test_two_muldiv_block(self):
        assert not can_pair(fi("mul", rd=5, rs1=1, rs2=2),
                            fi("div", rd=6, rs1=3, rs2=4))

    def test_control_flow_must_be_last(self):
        assert not can_pair(fi("beq", rs1=1, rs2=2, imm=8),
                            fi("add", rd=5, rs1=3, rs2=4))
        assert can_pair(fi("add", rd=5, rs1=3, rs2=4),
                        fi("beq", rs1=1, rs2=2, imm=8))


class TestGroup:
    def test_words_cache(self):
        group = Group(instrs=[fi("add", rd=1, rs1=2, rs2=3),
                              fi("sub", rd=4, rs1=5, rs2=6)])
        assert len(group) == 2
        assert group.words() == group.words_cache
        assert len(group.words()) == 2

    def test_truncate_updates_cache(self):
        group = Group(instrs=[fi("add", rd=1, rs1=2, rs2=3),
                              fi("sub", rd=4, rs1=5, rs2=6)])
        group.truncate(0)
        assert len(group) == 1
        assert len(group.words_cache) == 1


class TestBranchPredictor:
    def test_initially_predicts_not_taken(self):
        predictor = BranchPredictor()
        assert not predictor.predict_taken(0x1000)

    def test_learns_taken_branch(self):
        predictor = BranchPredictor()
        pc = 0x1000
        predictor.update(pc, taken=True, mispredicted=True)
        assert predictor.predict_taken(pc)  # weak-NT + 1 = weak-T

    def test_hysteresis(self):
        predictor = BranchPredictor()
        pc = 0x1000
        for _ in range(3):
            predictor.update(pc, taken=True, mispredicted=False)
        predictor.update(pc, taken=False, mispredicted=True)
        # One not-taken from strong-taken: still predicts taken.
        assert predictor.predict_taken(pc)

    def test_saturation(self):
        predictor = BranchPredictor()
        pc = 0x1000
        for _ in range(10):
            predictor.update(pc, taken=False, mispredicted=False)
        predictor.update(pc, taken=True, mispredicted=True)
        assert not predictor.predict_taken(pc)  # strong-NT + 1 = weak-NT

    def test_disabled_predictor_is_static_not_taken(self):
        predictor = BranchPredictor(enabled=False)
        pc = 0x1000
        for _ in range(5):
            predictor.update(pc, taken=True, mispredicted=True)
        assert not predictor.predict_taken(pc)

    def test_mispredict_counter(self):
        predictor = BranchPredictor()
        predictor.update(0, taken=True, mispredicted=True)
        predictor.update(0, taken=True, mispredicted=False)
        assert predictor.mispredictions == 1

    def test_identical_streams_identical_state(self):
        """Two predictors fed the same history agree forever — the
        predictor must not create artificial cross-core diversity."""
        p0, p1 = BranchPredictor(), BranchPredictor()
        history = [(0x1000, True), (0x1004, False), (0x1000, True),
                   (0x2000, True), (0x1000, False)] * 10
        for pc, taken in history:
            assert p0.predict_taken(pc) == p1.predict_taken(pc)
            mis0 = p0.predict_taken(pc) != taken
            p0.update(pc, taken, mis0)
            p1.update(pc, taken, mis0)
        assert p0._table == p1._table

    def test_entries_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            BranchPredictor(entries=100)

    def test_reset(self):
        predictor = BranchPredictor()
        predictor.update(0x1000, taken=True, mispredicted=True)
        predictor.reset()
        assert not predictor.predict_taken(0x1000)
        assert predictor.mispredictions == 0
