"""Command-line interface tests."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_kernels(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "binarysearch" in out
        assert "cubic" in out
        assert out.count("\n") >= 30


class TestRun:
    def test_run_kernel(self, capsys):
        assert main(["run", "countnegative"]) == 0
        out = capsys.readouterr().out
        assert "zero_stag=" in out
        assert "finished=True" in out

    def test_run_with_stagger(self, capsys):
        assert main(["run", "countnegative", "--stagger", "100",
                     "--late-core", "0"]) == 0
        out = capsys.readouterr().out
        assert "nops=100" in out
        assert "late=0" in out


class TestRow:
    def test_row_prints_all_columns(self, capsys):
        assert main(["row", "bitonic"]) == 0
        out = capsys.readouterr().out
        assert "bitonic" in out
        assert "10000 nops" in out


class TestStaticCommands:
    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for figure in ("Fig. 1", "Fig. 2a", "Fig. 2b", "Fig. 3",
                       "Fig. 4"):
            assert figure in out

    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "4000 LUTs" in out
        assert "3.4%" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "fac"]) == 0
        out = capsys.readouterr().out
        assert "_start:" in out
        assert "jalr" in out  # the ret


class TestVcd:
    def test_vcd_output(self, tmp_path, capsys):
        out_path = tmp_path / "run.vcd"
        assert main(["vcd", "bitonic", str(out_path)]) == 0
        content = out_path.read_text()
        assert content.startswith("$date")
        assert "no_diversity" in content


class TestLint:
    def test_lint_single_kernel(self, capsys):
        assert main(["lint", "cosf"]) == 0
        out = capsys.readouterr().out
        assert "cosf" in out
        assert "0 error(s)" in out

    def test_lint_all(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "29 kernel(s) linted" in out

    def test_lint_json(self, capsys):
        import json
        assert main(["lint", "fac", "recursion", "--format",
                     "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert [r["name"] for r in doc["reports"]] == ["fac",
                                                       "recursion"]
        assert all(r["diagnostics"] == [] for r in doc["reports"])

    def test_lint_metrics_snapshot(self, tmp_path, capsys):
        snapshot = tmp_path / "lint.json"
        assert main(["lint", "cosf", "--metrics", str(snapshot)]) == 0
        capsys.readouterr()
        assert main(["metrics", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "repro_lint_programs_total" in out
        assert 'repro_lint_blocks{kernel="cosf"}' in out


class TestErrors:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            main(["run", "nosuchkernel"])
