"""SafeDM APB register file tests (paper Section IV-B.2)."""

import pytest

from repro.core import apb_regs
from repro.core.apb_regs import make_monitored_slave
from repro.core.monitor import ReportingMode
from repro.mem.apb import ApbBridge, ApbError

IDLE = [(0, 0)] * 6
EMPTY_STAGES = [[(0, 0), (0, 0)]] * 7


def make_system(**kwargs):
    monitor, slave = make_monitored_slave(**kwargs)
    bridge = ApbBridge()
    base = bridge.attach(slave, 0, "safedm")
    return monitor, bridge, base


def lose_diversity(monitor, cycles=1, commits=(0, 0)):
    for _ in range(cycles):
        for index in (0, 1):
            monitor.clock_core(index, IDLE, stage_slots=EMPTY_STAGES)
        monitor.compare(0, *commits)


class TestControlRegister:
    def test_default_ctrl_value(self):
        monitor, bridge, base = make_system()
        assert bridge.read(base + apb_regs.CTRL) == 1  # enabled, polling

    def test_mode_programming(self):
        monitor, bridge, base = make_system()
        bridge.write(base + apb_regs.CTRL, 0b011)  # enable + irq-first
        assert monitor.mode is ReportingMode.INTERRUPT_FIRST
        bridge.write(base + apb_regs.CTRL, 0b101)  # enable + threshold
        assert monitor.mode is ReportingMode.INTERRUPT_THRESHOLD
        bridge.write(base + apb_regs.CTRL, 0b001)
        assert monitor.mode is ReportingMode.POLLING

    def test_disable(self):
        monitor, bridge, base = make_system()
        bridge.write(base + apb_regs.CTRL, 0)
        assert not monitor.enabled

    def test_bad_mode_rejected(self):
        monitor, bridge, base = make_system()
        with pytest.raises(ApbError):
            bridge.write(base + apb_regs.CTRL, 0b111)

    def test_threshold_register(self):
        monitor, bridge, base = make_system()
        bridge.write(base + apb_regs.THRESHOLD, 500)
        assert monitor.threshold == 500
        assert bridge.read(base + apb_regs.THRESHOLD) == 500


class TestCounters:
    def test_no_diversity_counters_visible(self):
        monitor, bridge, base = make_system()
        lose_diversity(monitor, cycles=3)
        assert bridge.read(base + apb_regs.NODIV) == 3
        assert bridge.read(base + apb_regs.DATA_NODIV) == 3
        assert bridge.read(base + apb_regs.INSTR_NODIV) == 3

    def test_staggering_two_complement(self):
        monitor, bridge, base = make_system()
        lose_diversity(monitor, commits=(0, 3))
        raw = bridge.read(base + apb_regs.STAG_DIFF)
        assert raw == 0xFFFFFFFD  # -3

    def test_zero_staggering_counter(self):
        monitor, bridge, base = make_system()
        lose_diversity(monitor, cycles=2)           # diff stays 0
        lose_diversity(monitor, commits=(1, 0))     # diff 1
        assert bridge.read(base + apb_regs.ZERO_STAG) == 2

    def test_cycle_counter_64_bit(self):
        monitor, bridge, base = make_system()
        lose_diversity(monitor, cycles=5)
        low = bridge.read(base + apb_regs.CYCLES_LO)
        high = bridge.read(base + apb_regs.CYCLES_HI)
        assert (high << 32) | low == 5


class TestStatusAndIrq:
    def test_status_reflects_last_cycle(self):
        monitor, bridge, base = make_system()
        lose_diversity(monitor)
        status = bridge.read(base + apb_regs.STATUS)
        assert status & (1 << 1)  # lack of diversity
        assert status & (1 << 2)  # zero staggering

    def test_irq_ack_via_register(self):
        monitor, bridge, base = make_system(
            mode=ReportingMode.INTERRUPT_FIRST)
        lose_diversity(monitor)
        assert bridge.read(base + apb_regs.STATUS) & 1
        bridge.write(base + apb_regs.IRQ_ACK, 1)
        assert not bridge.read(base + apb_regs.STATUS) & 1


class TestHistogramAccess:
    def test_histogram_readout(self):
        monitor, bridge, base = make_system(bin_size=1, num_bins=8)
        lose_diversity(monitor, cycles=3)
        monitor.finish()
        # condition 2 (no_diversity), bin 2 (length-3 episode)
        bridge.write(base + apb_regs.HIST_SEL, (2 << 8) | 2)
        assert bridge.read(base + apb_regs.HIST_DATA) == 1
        bridge.write(base + apb_regs.HIST_SEL, (2 << 8) | 0)
        assert bridge.read(base + apb_regs.HIST_DATA) == 0

    def test_histogram_config_register(self):
        monitor, bridge, base = make_system(bin_size=4, num_bins=16)
        cfg = bridge.read(base + apb_regs.HIST_CFG)
        assert cfg & 0xFFFF == 4
        assert cfg >> 16 == 16

    def test_out_of_range_bin_reads_zero(self):
        monitor, bridge, base = make_system(num_bins=8)
        bridge.write(base + apb_regs.HIST_SEL, 200)
        assert bridge.read(base + apb_regs.HIST_DATA) == 0


class TestReset:
    def test_reset_register(self):
        monitor, bridge, base = make_system()
        lose_diversity(monitor, cycles=4)
        bridge.write(base + apb_regs.RESET, 1)
        assert bridge.read(base + apb_regs.NODIV) == 0
        assert bridge.read(base + apb_regs.CYCLES_LO) == 0

    def test_unmapped_register_raises(self):
        monitor, bridge, base = make_system()
        with pytest.raises(ApbError):
            bridge.read(base + 0x3C)
        with pytest.raises(ApbError):
            bridge.write(base + apb_regs.NODIV, 1)  # read-only
