"""Unit tests for the tag-only cache model."""

import pytest

from repro.mem.cache import Cache, CacheConfig


def small_cache(ways=2, sets=4, line=32):
    return Cache(CacheConfig(size=line * ways * sets, line_size=line,
                             ways=ways))


class TestConfig:
    def test_num_sets(self):
        config = CacheConfig(size=4096, line_size=32, ways=2)
        assert config.num_sets == 64

    def test_bad_line_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size=4096, line_size=24, ways=2)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size=4097, line_size=32, ways=2)


class TestLookupFill:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(0x100)
        cache.fill(0x100)
        assert cache.lookup(0x100)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_different_offsets_hit(self):
        cache = small_cache()
        cache.fill(0x100)
        assert cache.lookup(0x11F)  # same 32-byte line
        assert not cache.lookup(0x120)  # next line

    def test_line_address(self):
        cache = small_cache()
        assert cache.line_address(0x11F) == 0x100
        assert cache.line_address(0x120) == 0x120

    def test_probe_has_no_side_effects(self):
        cache = small_cache()
        cache.fill(0x100)
        hits, misses = cache.stats.hits, cache.stats.misses
        assert cache.probe(0x100)
        assert not cache.probe(0x200)
        assert cache.stats.hits == hits
        assert cache.stats.misses == misses


class TestLru:
    def test_eviction_order(self):
        cache = small_cache(ways=2, sets=1)
        cache.fill(0x000)
        cache.fill(0x020)
        cache.fill(0x040)  # evicts 0x000 (LRU)
        assert not cache.probe(0x000)
        assert cache.probe(0x020)
        assert cache.probe(0x040)

    def test_lookup_refreshes_lru(self):
        cache = small_cache(ways=2, sets=1)
        cache.fill(0x000)
        cache.fill(0x020)
        cache.lookup(0x000)  # 0x000 becomes MRU
        cache.fill(0x040)    # evicts 0x020
        assert cache.probe(0x000)
        assert not cache.probe(0x020)

    def test_set_isolation(self):
        cache = small_cache(ways=1, sets=2)
        cache.fill(0x000)  # set 0
        cache.fill(0x020)  # set 1
        assert cache.probe(0x000)
        assert cache.probe(0x020)
        cache.fill(0x040)  # set 0 again: evicts 0x000 only
        assert not cache.probe(0x000)
        assert cache.probe(0x020)


class TestManagement:
    def test_invalidate_all(self):
        cache = small_cache()
        cache.fill(0x100)
        cache.fill(0x200)
        cache.invalidate_all()
        assert cache.resident_lines() == 0
        assert not cache.probe(0x100)

    def test_resident_lines(self):
        cache = small_cache()
        assert cache.resident_lines() == 0
        cache.fill(0x100)
        cache.fill(0x100)  # refill same line: still one resident
        assert cache.resident_lines() == 1

    def test_miss_rate(self):
        cache = small_cache()
        cache.lookup(0x100)
        cache.fill(0x100)
        cache.lookup(0x100)
        assert cache.stats.miss_rate == 0.5
