"""Golden CFG structure + clean-lint assertions over all 29 kernels.

A kernel edit that changes control-flow structure (splits/merges basic
blocks) or introduces a lint finding fails here fast, with the golden
table making the structural diff explicit.
"""

import importlib.util
import os

import pytest

from repro.lint import build_cfg, lint_source, lint_workload
from repro.workloads import all_names, program

#: kernel -> (basic blocks, decoded instructions) golden structure.
GOLDEN_CFG = {
    "binarysearch": (13, 59),
    "bitcount": (6, 33),
    "bitonic": (17, 68),
    "bsort": (12, 58),
    "complex_updates": (9, 72),
    "cosf": (7, 74),
    "countnegative": (7, 46),
    "cubic": (7, 60),
    "deg2rad": (5, 46),
    "fac": (10, 28),
    "fft": (15, 139),
    "filterbank": (9, 64),
    "fir2dim": (13, 86),
    "iir": (7, 110),
    "insertsort": (11, 57),
    "isqrt": (13, 55),
    "jfdctint": (17, 106),
    "lms": (11, 87),
    "ludcmp": (25, 175),
    "matrix1": (9, 74),
    "md5": (14, 134),
    "minver": (27, 135),
    "pm": (23, 135),
    "prime": (13, 35),
    "quicksort": (18, 93),
    "rad2deg": (5, 46),
    "recursion": (7, 22),
    "sha": (22, 175),
    "st": (7, 81),
}

#: kernel -> L013 dead-window reports under ``prove_masking=True``
#: (one per written register with at least one proven-dead point).
#: Every other rule count is pinned to zero by
#: :class:`TestKernelsLintClean`; this table pins the prover output.
GOLDEN_L013 = {
    "binarysearch": 13,
    "bitcount": 8,
    "bitonic": 15,
    "bsort": 13,
    "complex_updates": 14,
    "cosf": 14,
    "countnegative": 10,
    "cubic": 16,
    "deg2rad": 12,
    "fac": 8,
    "fft": 25,
    "filterbank": 16,
    "fir2dim": 16,
    "iir": 15,
    "insertsort": 12,
    "isqrt": 11,
    "jfdctint": 16,
    "lms": 17,
    "ludcmp": 16,
    "matrix1": 15,
    "md5": 21,
    "minver": 17,
    "pm": 15,
    "prime": 8,
    "quicksort": 16,
    "rad2deg": 12,
    "recursion": 6,
    "sha": 23,
    "st": 15,
}


class TestGoldenStructure:
    def test_golden_table_covers_all_kernels(self):
        assert set(GOLDEN_CFG) == set(all_names())

    @pytest.mark.parametrize("name", sorted(GOLDEN_CFG))
    def test_block_and_instruction_counts(self, name):
        report = lint_workload(name)
        assert (report.block_count, report.instr_count) == \
            GOLDEN_CFG[name], (
                "CFG structure of %r changed: %d blocks / %d instrs "
                "(golden %r) — intentional edits must update "
                "GOLDEN_CFG" % (name, report.block_count,
                                report.instr_count, GOLDEN_CFG[name]))


class TestKernelsLintClean:
    @pytest.mark.parametrize("name", sorted(GOLDEN_CFG))
    def test_no_error_diagnostics(self, name):
        report = lint_workload(name)
        assert report.ok, "lint errors in %r: %r" % (
            name, [d.to_dict() for d in report.errors])
        # The 29 shipped kernels are warning-free too, without
        # resorting to any suppression comments.
        assert report.diagnostics == []
        assert report.suppressed == []

    def test_every_kernel_halts(self):
        for name in all_names():
            cfg = build_cfg(program(name))
            assert cfg.entry in cfg.reaches_exit(), (
                "%r cannot reach its halt" % name)


class TestGoldenRuleCounts:
    def test_l013_table_covers_all_kernels(self):
        assert set(GOLDEN_L013) == set(all_names())

    @pytest.mark.parametrize("name", sorted(GOLDEN_L013))
    def test_prove_masking_rule_counts(self, name):
        """Pin every rule's firing count under ``prove_masking``: the
        interval rules (L010-L012) stay silent on all 29 shipped
        kernels and the L013 dead-window report count is golden."""
        report = lint_workload(name, prove_masking=True)
        counts = {}
        for diag in report.diagnostics:
            counts[diag.code] = counts.get(diag.code, 0) + 1
        assert counts == ({"L013": GOLDEN_L013[name]}
                          if GOLDEN_L013[name] else {}), (
            "rule counts of %r changed: %r (golden L013=%d) — "
            "intentional analysis changes must update GOLDEN_L013"
            % (name, counts, GOLDEN_L013[name]))


class TestExamplePrograms:
    def test_quickstart_program_lints_clean(self):
        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples", "quickstart.py")
        spec = importlib.util.spec_from_file_location("quickstart", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        report = lint_source(module.PROGRAM, name="quickstart")
        assert report.ok
        assert report.diagnostics == []
