"""Configuration validation and microarchitectural-knob tests."""

import pytest

from repro.cpu.core import CoreConfig
from repro.soc.config import SocConfig
from repro.soc.experiment import run_redundant
from repro.workloads import program, workload


class TestSocConfigValidation:
    def test_too_few_cores_rejected(self):
        with pytest.raises(ValueError):
            SocConfig(num_cores=1)

    def test_missing_data_bases_derived(self):
        cfg = SocConfig(num_cores=4)
        assert cfg.data_bases == (0x4000_0000, 0x5000_0000,
                                  0x6000_0000, 0x7000_0000)

    def test_inconsistent_data_base_override_rejected(self):
        # A custom base for core 1 with no base for core 2: deriving
        # would silently ignore the override, so this must fail loudly.
        with pytest.raises(ValueError, match="inconsistent"):
            SocConfig(num_cores=3,
                      data_bases=(0x4000_0000, 0x4800_0000))

    def test_misaligned_text_base_rejected(self):
        with pytest.raises(ValueError):
            SocConfig(text_base=0x10001)

    def test_three_cores_with_bases_accepted(self):
        cfg = SocConfig(num_cores=3,
                        data_bases=(0x4000_0000, 0x5000_0000,
                                    0x6000_0000))
        assert cfg.data_base(2) == 0x6000_0000


class TestPredictorKnob:
    def _run(self, enabled):
        cfg = SocConfig(core=CoreConfig(predictor_enabled=enabled))
        return run_redundant(program("bsort"), benchmark="bsort",
                             config=cfg)

    def test_results_identical_with_and_without_predictor(self):
        with_bp = self._run(True)
        without_bp = self._run(False)
        assert with_bp.finished and without_bp.finished
        assert with_bp.committed == without_bp.committed

    def test_predictor_saves_cycles(self):
        """Static not-taken pays the full penalty on every taken
        branch; the 2-bit predictor learns the loops."""
        with_bp = self._run(True)
        without_bp = self._run(False)
        assert with_bp.cycles < without_bp.cycles


class TestCacheGeometryKnobs:
    def test_tiny_l1d_increases_runtime(self):
        from repro.mem.cache import CacheConfig
        small = SocConfig(core=CoreConfig(
            l1d=CacheConfig(size=256, line_size=32, ways=2, name="l1d")))
        baseline = run_redundant(program("binarysearch"),
                                 benchmark="binarysearch")
        constrained = run_redundant(program("binarysearch"),
                                    benchmark="binarysearch",
                                    config=small)
        assert constrained.finished
        assert constrained.cycles > baseline.cycles

    def test_results_invariant_to_cache_geometry(self):
        from repro.mem.cache import CacheConfig
        small = SocConfig(core=CoreConfig(
            l1d=CacheConfig(size=256, line_size=32, ways=2, name="l1d"),
            l1i=CacheConfig(size=512, line_size=32, ways=2,
                            name="l1i")))
        from repro.soc.mpsoc import MPSoC
        soc = MPSoC(config=small)
        soc.start_redundant(program("bitonic"))
        soc.run()
        expected = workload("bitonic").expected_checksum
        assert soc.memory.read(small.data_bases[0], 8) == expected


class TestStoreBufferKnobs:
    def test_coalescing_disabled_still_correct(self):
        cfg = SocConfig(core=CoreConfig(store_buffer_coalesce=False))
        result = run_redundant(program("pm"), benchmark="pm",
                               config=cfg)
        assert result.finished

    def test_coalescing_speeds_up_store_bursts(self):
        base = run_redundant(program("pm"), benchmark="pm")
        no_coalesce = run_redundant(
            program("pm"), benchmark="pm",
            config=SocConfig(core=CoreConfig(
                store_buffer_coalesce=False)))
        assert base.cycles <= no_coalesce.cycles
