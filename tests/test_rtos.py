"""Safety-concept tests: FTTI arithmetic and the redundant job runner."""

import pytest

from repro.rtos.safety import FttiTracker
from repro.rtos.scheduler import PeriodicTask, RedundantJobRunner
from repro.workloads import program


class TestFttiTracker:
    def test_budget_arithmetic(self):
        tracker = FttiTracker(period_ms=50, ftti_ms=200)
        assert tracker.max_consecutive_drops == 3

    def test_ftti_shorter_than_period_rejected(self):
        with pytest.raises(ValueError):
            FttiTracker(period_ms=100, ftti_ms=50)

    def test_isolated_drops_are_safe(self):
        tracker = FttiTracker(period_ms=50, ftti_ms=100)  # 1 drop ok
        for dropped in (False, True, False, True, False):
            tracker.record(dropped)
        assert tracker.safe
        assert tracker.drop_count == 2

    def test_consecutive_drops_beyond_budget_hazard(self):
        tracker = FttiTracker(period_ms=50, ftti_ms=100)
        tracker.record(False)
        tracker.record(True)
        tracker.record(True)  # 2 consecutive > budget of 1
        assert not tracker.safe
        assert tracker.hazards == [2]

    def test_paper_example_values(self):
        """50ms period / 200ms FTTI: a single drop preserves safety
        ('the system still remains safe as long as new job drops do not
        occur consecutively' beyond the budget)."""
        tracker = FttiTracker(period_ms=50, ftti_ms=200)
        pattern = [False, True, True, True, False, True]
        for dropped in pattern:
            tracker.record(dropped)
        assert tracker.safe  # 3 consecutive == budget, not beyond
        tracker.record(True)
        tracker.record(True)
        tracker.record(True)
        tracker.record(True)
        assert not tracker.safe

    def test_release_times(self):
        tracker = FttiTracker(period_ms=50, ftti_ms=200)
        tracker.record(False)
        record = tracker.record(False)
        assert record.release_ms == 50.0

    def test_summary(self):
        tracker = FttiTracker()
        tracker.record(True, reason="diversity interrupt")
        assert "drops=1" in tracker.summary()


class TestRedundantJobRunner:
    @pytest.fixture(scope="class")
    def task(self):
        return PeriodicTask(name="brake", program=program("bitonic"),
                            period_ms=50, ftti_ms=200,
                            diversity_threshold=1_000_000)

    def test_jobs_complete_without_drops(self, task):
        runner = RedundantJobRunner(task)
        outcomes = runner.run(3)
        assert len(outcomes) == 3
        assert all(not o.dropped for o in outcomes)
        assert runner.tracker.safe
        # deterministic platform: identical job outcomes
        assert len({o.output for o in outcomes}) == 1

    def test_tight_threshold_drops_jobs(self):
        """With threshold 1, any no-diversity cycle drops the job —
        the paper's 'same safety measure as if an error had occurred'
        strategy."""
        task = PeriodicTask(name="steer", program=program("bitonic"),
                            diversity_threshold=1)
        runner = RedundantJobRunner(task)
        outcome = runner.run_job(0)
        assert outcome.dropped
        assert outcome.interrupts >= 1
        assert outcome.output is None

    def test_hazard_detection_on_consecutive_drops(self):
        task = PeriodicTask(name="steer", program=program("bitonic"),
                            period_ms=50, ftti_ms=100,
                            diversity_threshold=1)
        runner = RedundantJobRunner(task)
        runner.run(3)  # every job drops; budget is 1 consecutive
        assert not runner.tracker.safe

    def test_summary(self, task):
        runner = RedundantJobRunner(task)
        runner.run(1)
        assert "brake" in runner.summary()
