"""Unit tests for repro.isa.registers."""

import pytest

from repro.isa.registers import (
    ABI_NAMES,
    NUM_REGISTERS,
    XLEN,
    XMASK,
    RegisterError,
    parse_register,
    register_name,
    to_signed,
    to_unsigned,
)


class TestParseRegister:
    def test_abi_names_round_trip(self):
        for index, name in enumerate(ABI_NAMES):
            assert parse_register(name) == index

    def test_numeric_names(self):
        for index in range(NUM_REGISTERS):
            assert parse_register("x%d" % index) == index

    def test_fp_alias_is_s0(self):
        assert parse_register("fp") == parse_register("s0") == 8

    def test_case_insensitive(self):
        assert parse_register("A0") == 10
        assert parse_register(" sp ") == 2

    def test_unknown_name_raises(self):
        with pytest.raises(RegisterError):
            parse_register("q7")

    def test_out_of_range_numeric_raises(self):
        with pytest.raises(RegisterError):
            parse_register("x32")


class TestRegisterName:
    def test_canonical_names(self):
        assert register_name(0) == "zero"
        assert register_name(1) == "ra"
        assert register_name(2) == "sp"
        assert register_name(31) == "t6"

    def test_out_of_range(self):
        with pytest.raises(RegisterError):
            register_name(32)
        with pytest.raises(RegisterError):
            register_name(-1)

    def test_full_round_trip(self):
        for index in range(NUM_REGISTERS):
            assert parse_register(register_name(index)) == index


class TestSignConversions:
    def test_to_signed_positive(self):
        assert to_signed(5) == 5

    def test_to_signed_negative(self):
        assert to_signed(XMASK) == -1
        assert to_signed(1 << (XLEN - 1)) == -(1 << (XLEN - 1))

    def test_to_signed_narrow(self):
        assert to_signed(0xFF, bits=8) == -1
        assert to_signed(0x7F, bits=8) == 127

    def test_to_unsigned_wraps(self):
        assert to_unsigned(-1) == XMASK
        assert to_unsigned(1 << XLEN) == 0

    def test_round_trip(self):
        for value in (0, 1, -1, 2**63 - 1, -2**63, 12345, -99999):
            assert to_signed(to_unsigned(value)) == value
