"""Static fault-masking proofs: unit behaviour + the soundness bridge.

The load-bearing property: for every kernel, every recorded cycle's
frontier program point, and every register, ``statically proven dead``
implies ``the dynamic access log also proves it dead`` — the static
masked set is a *subset* of the dynamic one.  A single violation means
the Monte-Carlo static pre-filter could silently misclassify a trial,
so this is checked over complete golden runs of all 29 kernels
(cycle-sampled for runtime; every register is checked at every sampled
cycle).  Truncated golden runs fall outside the proofs' path-complete
premise, and :func:`~repro.montecarlo.golden.classify_batch` drops the
filter for them — also asserted here.
"""

import pytest

from repro.isa.assembler import assemble
from repro.lint.absint import ALL_REGISTERS, RESULT_REGISTER
from repro.lint.masking import (
    FRONTIER_HALTED,
    MaskingProofs,
    StaticMaskFilter,
    compute_masking_proofs,
)
from repro.montecarlo.golden import mc_golden_run
from repro.workloads import all_names, program

BASE = 0x0001_0000

#: Cycle sampling step for the subset check (every register is still
#: checked at every sampled cycle).
CYCLE_STEP = 7


def simple_proofs():
    return compute_masking_proofs(assemble("""
_start:
    li t0, 3
    sd t0, 0(gp)
    ebreak
""", base=BASE))


class TestMaskingProofs:
    def test_dead_between_write_and_read(self):
        proofs = simple_proofs()
        pcs = sorted(proofs.live_in)
        li_pc, sd_pc, ebreak_pc = pcs
        # Before the li issues the old t0 value is already dead (the
        # li overwrites it on every path); the sd still reads it; once
        # the sd has issued it is dead again.
        assert proofs.dead_at(li_pc, 5)
        assert not proofs.dead_at(sd_pc, 5)
        assert proofs.dead_at(ebreak_pc, 5)

    def test_result_register_never_proven_dead(self):
        proofs = simple_proofs()
        for pc in proofs.live_in:
            assert not proofs.dead_at(pc, RESULT_REGISTER)
        assert not proofs.dead_at(FRONTIER_HALTED, RESULT_REGISTER)

    def test_halted_frontier_kills_everything_else(self):
        proofs = simple_proofs()
        assert proofs.dead_registers(FRONTIER_HALTED) \
            == ALL_REGISTERS - {RESULT_REGISTER}

    def test_unknown_point_proves_nothing(self):
        proofs = simple_proofs()
        assert not proofs.dead_at(0xDEAD_0000, 5)
        assert proofs.dead_registers(0xDEAD_0000) == frozenset()

    def test_windows_are_maximal_and_contiguous(self):
        proofs = simple_proofs()
        pcs = sorted(proofs.live_in)
        windows = proofs.windows(5)
        assert windows == [(pcs[0], pcs[0] + 4), (pcs[2], pcs[2] + 4)]
        for start, end in windows:
            for pc in range(start, end, 4):
                assert proofs.dead_at(pc, 5)

    def test_point_counts_consistent(self):
        proofs = simple_proofs()
        assert proofs.point_count == 3
        assert proofs.dead_point_count(5) == 2
        assert proofs.coverage()[5] == 2

    def test_proofs_published_as_point_metadata(self):
        prog = assemble("""
_start:
    li t0, 3
    sd t0, 0(gp)
    ebreak
""", base=BASE)
        proofs = MaskingProofs(prog)
        for pc in proofs.live_in:
            assert prog.point_metadata(pc, "masking.dead") \
                == proofs.dead_registers(pc)

    def test_filter_delegates_to_proofs(self):
        proofs = simple_proofs()
        filt = StaticMaskFilter(proofs)
        for pc in proofs.live_in:
            for reg in (5, RESULT_REGISTER):
                assert filt.is_masked(pc, reg) \
                    == proofs.dead_at(pc, reg)


class TestStaticSubsetOfDynamic:
    """The soundness bridge, per kernel."""

    @pytest.mark.parametrize("name", sorted(all_names()))
    def test_static_masked_subset_of_dynamic_masked(self, name):
        # Complete (finished) golden runs: the proofs quantify over
        # complete paths, which is also the only regime the campaign
        # engine uses them in (classify_batch drops the filter for
        # truncated runs).
        prog = program(name)
        proofs = MaskingProofs(prog)
        artifact = mc_golden_run(prog, record_ccf=False)
        assert artifact.base.finished
        checked = proven = 0
        for core in (0, 1):
            trace = artifact.frontier[core]
            access = artifact.access[core]
            for cycle in range(0, len(trace), CYCLE_STEP):
                frontier = trace[cycle]
                for reg in ALL_REGISTERS:
                    checked += 1
                    if not proofs.dead_at(frontier, reg):
                        continue
                    proven += 1
                    dead, _ = access.corruption_fate(reg, cycle)
                    assert dead, (
                        "%s: static proof at cycle %d (frontier %#x) "
                        "claims r%d dead but the access log reads it"
                        % (name, cycle, frontier, reg))
        # The proofs must also be useful, not vacuously sound.
        assert proven > 0.2 * checked, (
            "%s: only %d/%d points proven" % (name, proven, checked))

    def test_truncated_golden_run_disables_the_filter(self):
        """A golden run cut off mid-flight breaks the proofs'
        complete-path premise (its end-of-run checksum read is not
        preceded by the write a full path would have), so the
        classifier must ignore the static filter for it."""
        from repro.montecarlo.batch import STATUS_STATIC, TrialBatch
        from repro.montecarlo.golden import classify_batch

        prog = program("binarysearch")
        artifact = mc_golden_run(prog, max_cycles=500,
                                 record_ccf=False)
        assert not artifact.base.finished
        filt = StaticMaskFilter.from_program(prog)
        # The static proof legitimately claims s0 dead at the entry
        # frontier — which the truncated log contradicts.
        assert filt.is_masked(artifact.frontier[0][0], RESULT_REGISTER)
        batch = TrialBatch("transient", 1)
        batch.set_transient_trial(0, cycle=0, core=0,
                                  register=RESULT_REGISTER, bit=3)
        classify_batch(artifact, batch, static_filter=filt)
        assert batch.count_status(STATUS_STATIC) == 0
