"""Tiered execution engine tests: fast tier == reference, bit for bit.

The contract under test (ISSUE 6, tentpole): for every kernel,
configuration, stagger, reporting mode, capture run, checkpoint, and
fault injection, running under ``engine="fast"`` produces *exactly*
the observables of the reference interpreter — full platform
state dicts, monitor statistics, histograms, capture streams, and
telemetry counters.  The fast tier is a performance tier, never a
semantics tier.
"""

import dataclasses

import pytest

from repro.checkpoint import Snapshot, jsonable
from repro.core.monitor import ReportingMode
from repro.core.signatures import IsVariant, SignatureConfig
from repro.engine import EngineStats, resolve_engine, run_soc
from repro.fault import (
    ForkEngine,
    golden_run,
    golden_run_with_checkpoints,
    inject_common_cause,
    inject_transient,
)
from repro.soc.config import SocConfig
from repro.soc.experiment import run_redundant, run_redundant_captured
from repro.soc.mpsoc import MPSoC
from repro.telemetry import NULL_REGISTRY, MetricsRegistry
from repro.workloads import all_names, program

#: Truncated so the 29-kernel property sweep stays test-suite cheap;
#: every kernel still executes thousands of monitored cycles, compiles
#: dozens of blocks, and crosses plenty of deopt points.
MAX_CYCLES = 12_000

KERNEL = "countnegative"  # short, memory-touching kernel


def _pair_run(name, engine, stagger=0, late_core=1,
              mode=ReportingMode.POLLING, threshold=1, config=None,
              max_cycles=MAX_CYCLES):
    """Build a fresh pair platform and run it under ``engine``."""
    prog = program(name)
    soc = MPSoC(config=config, mode=mode, threshold=threshold)
    soc.start_redundant(prog, stagger_nops=stagger, late_core=late_core)
    cycles, stats = run_soc(soc, engine, program=prog,
                            max_cycles=max_cycles)
    return soc, cycles, stats


def _sans_engine(registry):
    """Counter samples minus the ``repro_engine_*`` family.

    Engine counters legitimately differ across tiers (that is what
    they measure); everything else must be identical.
    """
    return {key: value
            for key, value in registry.counter_values().items()
            if not key[0].startswith("repro_engine_")}


# --- the headline property: fast == reference, every kernel -----------------

@pytest.mark.parametrize("name", all_names())
def test_fast_matches_reference_every_kernel(name):
    ref, ref_cycles, _ = _pair_run(name, "reference")
    fast, fast_cycles, stats = _pair_run(name, "fast")
    assert stats.fallback_reason is None, name
    assert fast_cycles == ref_cycles, name
    assert jsonable(fast.state_dict()) == jsonable(ref.state_dict()), name


@pytest.mark.parametrize("stagger,late_core", [(100, 1), (1000, 0)])
@pytest.mark.parametrize("name", ["cosf", KERNEL])
def test_fast_matches_reference_staggered(name, stagger, late_core):
    prog = program(name)
    ref_reg, fast_reg = MetricsRegistry(), MetricsRegistry()
    ref = run_redundant(prog, benchmark=name, stagger_nops=stagger,
                        late_core=late_core, max_cycles=MAX_CYCLES,
                        metrics=ref_reg)
    fast = run_redundant(prog, benchmark=name, stagger_nops=stagger,
                         late_core=late_core, max_cycles=MAX_CYCLES,
                         metrics=fast_reg, engine="fast")
    assert dataclasses.asdict(fast) == dataclasses.asdict(ref)
    assert _sans_engine(fast_reg) == _sans_engine(ref_reg)


@pytest.mark.parametrize("mode,threshold", [
    (ReportingMode.INTERRUPT_FIRST, 1),
    (ReportingMode.INTERRUPT_THRESHOLD, 4),
])
def test_fast_matches_reference_interrupt_modes(mode, threshold):
    prog = program(KERNEL)
    ref = run_redundant(prog, benchmark=KERNEL, mode=mode,
                        threshold=threshold, max_cycles=MAX_CYCLES)
    fast = run_redundant(prog, benchmark=KERNEL, mode=mode,
                         threshold=threshold, max_cycles=MAX_CYCLES,
                         engine="fast")
    assert dataclasses.asdict(fast) == dataclasses.asdict(ref)


def test_fast_capture_stream_equals_reference():
    """Raw monitor taps (the replay substrate) must match byte for byte,
    so trace-cache entries stay engine-independent."""
    prog = program(KERNEL)
    ref_res, ref_trace = run_redundant_captured(
        prog, benchmark=KERNEL, stagger_nops=100, max_cycles=MAX_CYCLES)
    fast_res, fast_trace = run_redundant_captured(
        prog, benchmark=KERNEL, stagger_nops=100, max_cycles=MAX_CYCLES,
        engine="fast")
    assert dataclasses.asdict(fast_res) == dataclasses.asdict(ref_res)
    assert fast_trace.encode() == ref_trace.encode()


# --- cross-tier checkpoints -------------------------------------------------

@pytest.mark.parametrize("first,second", [("reference", "fast"),
                                          ("fast", "reference")])
def test_cross_tier_checkpoint_resume(first, second):
    """A snapshot taken under one tier resumes under the other and
    still reproduces the uninterrupted run's absolute counters."""
    prog = program(KERNEL)
    full = run_redundant(prog, benchmark=KERNEL, stagger_nops=100,
                         max_cycles=MAX_CYCLES)
    grabbed = {}

    def keep_first(soc):
        if "snap" not in grabbed:
            grabbed["snap"] = soc.snapshot(benchmark=KERNEL)

    run_redundant(prog, benchmark=KERNEL, stagger_nops=100,
                  max_cycles=MAX_CYCLES, checkpoint_every=500,
                  on_checkpoint=keep_first, engine=first)
    snap = Snapshot.decode(grabbed["snap"].encode())
    resumed = run_redundant(prog, benchmark=KERNEL, stagger_nops=100,
                            max_cycles=MAX_CYCLES, resume_from=snap,
                            engine=second)
    assert dataclasses.asdict(resumed) == dataclasses.asdict(full)


def test_shared_decode_cache_links_pair_and_survives_restore():
    """Pair cores share one per-PC decode cache; a snapshot/restore
    round trip re-links the sharing and continues bit-identically."""
    prog = program("cosf")
    soc = MPSoC()
    soc.start_redundant(prog)
    a, b = soc.monitored
    assert soc.cores[a]._fetch_cache is soc.cores[b]._fetch_cache
    for _ in range(400):
        soc.step()
    snap = Snapshot.decode(soc.snapshot(benchmark="cosf").encode())
    restored = MPSoC()
    restored.load_state_dict(snap.state)
    ra, rb = restored.monitored
    assert restored.cores[ra]._fetch_cache \
        is restored.cores[rb]._fetch_cache
    soc.run(max_cycles=400)
    restored.run(max_cycles=400)
    assert jsonable(restored.state_dict()) == jsonable(soc.state_dict())


# --- fault injection --------------------------------------------------------

def test_fault_injection_fast_equals_reference():
    prog = program(KERNEL)
    golden = golden_run(prog)
    ref_ccf = inject_common_cause(prog, 2000, 0x5EED, golden=golden)
    fast_ccf = inject_common_cause(prog, 2000, 0x5EED, golden=golden,
                                   engine="fast")
    assert dataclasses.asdict(fast_ccf) == dataclasses.asdict(ref_ccf)

    ref_tr = inject_transient(prog, 2000, core=0, register=5, bit=17,
                              golden=golden)
    fast_tr = inject_transient(prog, 2000, core=0, register=5, bit=17,
                               golden=golden, engine="fast")
    assert dataclasses.asdict(fast_tr) == dataclasses.asdict(ref_tr)


def test_fault_injection_fork_cross_tier():
    """Fork-from-checkpoint plus fast-tier stretches still equals a
    from-scratch reference injection."""
    prog = program(KERNEL)
    artifact = golden_run_with_checkpoints(prog, checkpoint_every=500)
    fork = ForkEngine(prog, artifact)
    cycle = artifact.checkpoint_cycles[0] + 137
    base = inject_common_cause(prog, cycle, 0x5EED,
                               golden=artifact.checksum)
    forked = inject_common_cause(prog, cycle, 0x5EED,
                                 golden=artifact.checksum, fork=fork,
                                 engine="fast")
    assert dataclasses.asdict(forked) == dataclasses.asdict(base)


# --- engine behaviour -------------------------------------------------------

def test_fast_tier_engagement_and_deopt_ceiling():
    _, cycles, stats = _pair_run("cosf", "fast")
    assert stats.fallback_reason is None
    assert stats.blocks_compiled > 0
    assert stats.fast_cycles == cycles
    assert stats.tier_hit_rate > 0.9
    # Matches the CI benchmark gate (--max-deopt-rate 0.01); the
    # superblock tier runs the TACLe kernels deopt-free in steady
    # state, so 1% leaves generous room for warm-up transients.
    assert stats.deopts <= 0.01 * cycles


def test_unsupported_shape_falls_back_and_stays_correct():
    config = SocConfig(signature=SignatureConfig(
        is_variant=IsVariant.INFLIGHT))
    ref, ref_cycles, _ = _pair_run(KERNEL, "reference", config=config)
    fast, fast_cycles, stats = _pair_run(KERNEL, "fast", config=config)
    assert stats.fallback_reason is not None
    assert "PER_STAGE" in stats.fallback_reason
    assert fast_cycles == ref_cycles
    assert jsonable(fast.state_dict()) == jsonable(ref.state_dict())


# --- adversarial superblock side exits --------------------------------------
# Hand-written kernels aimed at the three superblock guard classes:
# direction guards (bias flip), in-line memory guards (L1 store miss),
# and page-version guards (self-modifying code).  Each must stay
# bit-identical to the reference tier while exercising the side exit.

from repro.engine.plan import GUARD_RELINK_THRESHOLD  # noqa: E402
from repro.isa.assembler import assemble  # noqa: E402
from repro.workloads import store_result  # noqa: E402

#: A branch taken for 600 iterations, then not-taken for 600 more: the
#: superblock tier links the hot arm, then eats GUARD_RELINK_THRESHOLD
#: guard failures and re-specializes for the new bias.
BIAS_FLIP_SOURCE = """
_start:
    li t0, 0
    li t1, 1200
    li t2, 600
    li s0, 0
loop:
    blt t0, t2, small
    addi s0, s0, 3
    j merge
small:
    addi s0, s0, 1
merge:
    addi t0, t0, 1
    blt t0, t1, loop
%s
""" % store_result("s0")

#: Stores striding 4 KiB apart all map to one L1 set (64 sets x 32 B
#: lines), so the in-line tag probe keeps missing inside the hot
#: superblock and the memory op deopts to the reference memory stage.
STORE_MISS_SOURCE = """
_start:
    li t0, 0
    li t1, 300
    li s0, 0
    addi t2, gp, 64
sloop:
    sw t0, 0(t2)
    lw t3, 0(t2)
    add s0, s0, t3
    li t4, 4096
    add t2, t2, t4
    addi t0, t0, 1
    blt t0, t1, sloop
%s
""" % store_result("s0")

#: An inner loop hot enough to compile, then a store over its own
#: first instruction (same word, so semantics are unchanged) bumping
#: the code-page version; the compiled superblock must be invalidated
#: and rebuilt, and the next outer iteration re-enters the rebuilt
#: code.
SELF_MODIFY_SOURCE = """
_start:
    li s0, 0
    li s2, 0
outer:
    li t0, 0
inner:
    addi s0, s0, 1
    addi t0, t0, 1
    li t1, 100
    blt t0, t1, inner
    la t6, inner
    lw t5, 0(t6)
    sw t5, 0(t6)
    addi s2, s2, 1
    li t3, 3
    blt s2, t3, outer
%s
""" % store_result("s0")


def _adversarial_run(source, engine):
    prog = assemble(source, base=0x0001_0000)
    soc = MPSoC()
    soc.start_redundant(prog)
    cycles, stats = run_soc(soc, engine, program=prog,
                            max_cycles=MAX_CYCLES)
    return soc, cycles, stats


def test_bias_flipping_branch_relinks_and_stays_identical():
    ref, ref_cycles, _ = _adversarial_run(BIAS_FLIP_SOURCE, "reference")
    fast, fast_cycles, stats = _adversarial_run(BIAS_FLIP_SOURCE, "fast")
    assert stats.fallback_reason is None
    assert fast_cycles == ref_cycles
    assert jsonable(fast.state_dict()) == jsonable(ref.state_dict())
    # The flipped branch must have cost guard failures and triggered
    # an adaptive re-specialization for the new direction.
    assert stats.deopt_reasons.get("guard_fail", 0) \
        >= GUARD_RELINK_THRESHOLD
    assert stats.recompilations >= 1
    assert stats.deopt_reasons.get("recompile", 0) >= 1
    assert stats.superblock_links > 0


def test_store_missing_l1_handled_inline_within_superblock():
    ref, ref_cycles, _ = _adversarial_run(STORE_MISS_SOURCE, "reference")
    fast, fast_cycles, stats = _adversarial_run(STORE_MISS_SOURCE, "fast")
    assert stats.fallback_reason is None
    assert fast_cycles == ref_cycles
    assert jsonable(fast.state_dict()) == jsonable(ref.state_dict())
    # The kernel really did thrash L1 from inside compiled code...
    assert fast.cores[0].dcache.stats.misses > 200
    # ...and the guarded in-line memory path absorbed every miss:
    # the block tier (PR 6) delegated each one to the reference memory
    # stage, the superblock tier must delegate none.
    assert stats.deopt_reasons.get("mem_stage", 0) == 0
    assert stats.delegations == 0
    assert stats.superblock_links > 0


def test_self_modifying_code_invalidates_superblock_page():
    ref, ref_cycles, _ = _adversarial_run(SELF_MODIFY_SOURCE,
                                          "reference")
    fast, fast_cycles, stats = _adversarial_run(SELF_MODIFY_SOURCE,
                                                "fast")
    assert stats.fallback_reason is None
    assert fast_cycles == ref_cycles
    assert jsonable(fast.state_dict()) == jsonable(ref.state_dict())
    # Each outer iteration's store bumps the code-page version; the
    # compiled blocks on that page must be rebuilt, not trusted stale.
    assert stats.recompilations >= 1
    assert stats.deopt_reasons.get("recompile", 0) >= 1


def test_resolve_engine_validates():
    assert resolve_engine(None) == "reference"
    assert resolve_engine("fast") == "fast"
    with pytest.raises(ValueError):
        resolve_engine("warp")


def test_engine_counters_exported():
    registry = MetricsRegistry()
    run_redundant(program(KERNEL), benchmark=KERNEL,
                  max_cycles=MAX_CYCLES, metrics=registry, engine="fast")
    labels = (("engine", "fast"),)
    assert registry.value("repro_engine_blocks_compiled_total",
                          labels) > 0
    assert registry.value("repro_engine_fast_cycles_total", labels) > 0
    assert registry.value("repro_engine_deopts_total", labels,
                          default=None) is not None
    stats = EngineStats(engine="fast", blocks_compiled=1)
    stats.to_metrics(NULL_REGISTRY)  # disabled registry: a no-op
    assert len(NULL_REGISTRY) == 0


# --- NULL_REGISTRY: per-cycle hooks stay true no-ops ------------------------

class _ExplodingRegistry:
    """A disabled registry that must never be consulted."""

    enabled = False

    def counter(self, *args, **kwargs):
        raise AssertionError("disabled registry was consulted")

    gauge = counter
    histogram = counter


def test_disabled_registry_attach_is_true_noop():
    soc = MPSoC()
    soc.start_redundant(program(KERNEL))
    soc.attach_telemetry(_ExplodingRegistry())
    assert not soc.safedm.has_metrics_attached()
    for _ in range(300):
        soc.step()  # would raise if any per-cycle hook survived


def test_null_registry_attach_allocates_nothing():
    """Attaching NULL_REGISTRY must not allocate in repro code: the
    per-cycle loop keeps its exact no-telemetry shape."""
    import tracemalloc

    soc = MPSoC()
    soc.start_redundant(program(KERNEL))
    tracemalloc.start()
    try:
        soc.attach_telemetry(NULL_REGISTRY)
        soc.safedm.attach_metrics(NULL_REGISTRY)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    offenders = [stat for stat in snapshot.statistics("lineno")
                 if "repro" in stat.traceback[0].filename
                 and "tests" not in stat.traceback[0].filename]
    assert not offenders, offenders
