"""The pm timing-anomaly mechanism (paper Section V-C).

"... its store operations are kept in its core-local store buffer
awaiting for the bus to become idle.  However, this allows that
multiple stores to the same cache line ... are grouped into a single
transaction in the store buffer, hence reducing the latency to write
all data."

These tests demonstrate the mechanism in isolation: the same store
sequence costs *fewer bus transactions* when the bus is busy (stores
pile up and coalesce) than when the bus is idle (each store drains
immediately) — so a *delayed* core can complete a store burst with
less bus work than the head core did.
"""

from repro.mem.bus import AhbBus, BusTiming
from repro.mem.cache import CacheConfig
from repro.mem.store_buffer import StoreBuffer


def make_bus():
    return AhbBus(num_masters=2, timing=BusTiming(),
                  l2_config=CacheConfig(size=4096, line_size=32, ways=4))


def drive_stores(bus, sb, spacing, count, occupy_bus=False,
                 max_cycles=5000):
    """Issue ``count`` same-line-pair stores, one every ``spacing``
    cycles; optionally keep the bus occupied by master 1."""
    cycle = 0
    issued = 0
    hog_request = None
    while (issued < count or not sb.empty) and cycle < max_cycles:
        if occupy_bus and (hog_request is None
                           or hog_request.done(cycle)):
            hog_request = bus.request_line(1, 0x9000_0000 + cycle * 32,
                                           cycle)
        if issued < count and cycle % spacing == 0:
            assert sb.push(0x1000 + 8 * issued, cycle)
            issued += 1
        sb.step(cycle)
        bus.step(cycle)
        cycle += 1
    assert sb.empty, "store buffer failed to drain"
    return cycle


class TestCoalescingAsymmetry:
    SPACING = 8   # one store every 8 cycles
    COUNT = 16    # 16 stores over 4 cache lines

    def test_idle_bus_drains_without_coalescing(self):
        bus = make_bus()
        sb = StoreBuffer(0, bus, depth=8)
        drive_stores(bus, sb, self.SPACING, self.COUNT,
                     occupy_bus=False)
        # Idle bus: each store drains before the next arrives.
        assert sb.stats.coalesced == 0
        assert sb.stats.transactions == self.COUNT

    def test_busy_bus_forces_coalescing(self):
        bus = make_bus()
        sb = StoreBuffer(0, bus, depth=8)
        drive_stores(bus, sb, self.SPACING, self.COUNT,
                     occupy_bus=True)
        # Contended bus: stores pile up and merge per line.
        assert sb.stats.coalesced > 0
        assert sb.stats.transactions < self.COUNT

    def test_delayed_core_needs_less_bus_work(self):
        """The anomaly: the delayed ('trail') core finishes the same
        store burst with fewer bus transactions than the head core —
        which is how it can catch up and re-synchronise."""
        idle_bus = make_bus()
        head = StoreBuffer(0, idle_bus, depth=8)
        drive_stores(idle_bus, head, self.SPACING, self.COUNT,
                     occupy_bus=False)

        busy_bus = make_bus()
        trail = StoreBuffer(0, busy_bus, depth=8)
        drive_stores(busy_bus, trail, self.SPACING, self.COUNT,
                     occupy_bus=True)

        assert trail.stats.transactions < head.stats.transactions
        assert trail.stats.stores_accepted == head.stats.stores_accepted

    def test_coalescing_disabled_removes_the_anomaly(self):
        bus = make_bus()
        sb = StoreBuffer(0, bus, depth=16, coalesce=False)
        drive_stores(bus, sb, self.SPACING, self.COUNT, occupy_bus=True)
        assert sb.stats.coalesced == 0
        assert sb.stats.transactions == self.COUNT
