"""HardwareFifo unit tests."""

import pytest

from repro.core.fifo import HardwareFifo


class TestBasics:
    def test_resets_to_zeroed_entries(self):
        fifo = HardwareFifo(4)
        assert fifo.contents() == (0, 0, 0, 0)

    def test_custom_reset_value(self):
        fifo = HardwareFifo(3, reset_value=(0, 0))
        assert fifo.contents() == ((0, 0),) * 3

    def test_push_shifts_oldest_out(self):
        fifo = HardwareFifo(3)
        for value in (1, 2, 3, 4):
            fifo.push(value)
        assert fifo.contents() == (2, 3, 4)
        assert fifo.oldest == 2
        assert fifo.newest == 4

    def test_depth_invariant(self):
        fifo = HardwareFifo(5)
        for value in range(100):
            fifo.push(value)
        assert len(fifo) == 5
        assert len(fifo.contents()) == 5

    def test_minimum_depth(self):
        with pytest.raises(ValueError):
            HardwareFifo(0)


class TestHold:
    def test_hold_freezes_contents(self):
        fifo = HardwareFifo(3)
        fifo.push(1)
        snapshot = fifo.contents()
        fifo.push(2, hold=True)
        assert fifo.contents() == snapshot
        assert fifo.held_cycles == 1

    def test_push_counter_excludes_held(self):
        fifo = HardwareFifo(3)
        fifo.push(1)
        fifo.push(2, hold=True)
        fifo.push(3)
        assert fifo.pushes == 2


class TestComparison:
    def test_equal_fifos(self):
        a, b = HardwareFifo(3), HardwareFifo(3)
        for value in (1, 2, 3):
            a.push(value)
            b.push(value)
        assert a == b
        assert hash(a) == hash(b)

    def test_order_matters(self):
        a, b = HardwareFifo(2), HardwareFifo(2)
        a.push(1)
        a.push(2)
        b.push(2)
        b.push(1)
        assert a != b

    def test_timing_matters(self):
        """Same values pushed with different timing differ — the
        rationale for sampling every cycle (paper III-B.1)."""
        a, b = HardwareFifo(4), HardwareFifo(4)
        a.push((1, 5))
        a.push((0, 0))
        b.push((0, 0))
        b.push((1, 5))
        assert a != b

    def test_reset_restores_initial_state(self):
        fifo = HardwareFifo(3)
        fifo.push(42)
        fifo.reset()
        assert fifo.contents() == (0, 0, 0)
