"""Extension scenarios the paper sketches but does not evaluate.

* Section III-B.4: SafeDM "puts no constraints on the software run in
  each core and it could even be used to support diverse software
  implementations of the same function" — covered by running two
  *different* binaries of the same function under the monitor.
* Section V-C notes their bare-metal runs lack "system level effects
  ... or other tasks scheduled" — covered by a third (non-monitored)
  core generating bus noise next to the redundant pair.
"""

from repro.core.monitor import ReportingMode
from repro.isa import assemble
from repro.soc.config import SocConfig
from repro.soc.mpsoc import MPSoC
from repro.workloads import program


SUM_LOOP = """
_start:
    li s1, 100
    li s0, 0
loop:
    add s0, s0, s1
    addi s1, s1, -1
    bnez s1, loop
    sd s0, 0(gp)
    ebreak
"""

# Same function, different algorithm: n*(n+1)/2 with a redundant
# self-check loop so the run is not trivially short.
SUM_FORMULA = """
_start:
    li t0, 100
    addi t1, t0, 1
    mul s0, t0, t1
    srli s0, s0, 1
    # burn comparable time touching memory (diverse stream)
    li s1, 50
spin:
    sd s0, 8(gp)
    ld t2, 8(gp)
    addi s1, s1, -1
    bnez s1, spin
    sd s0, 0(gp)
    ebreak
"""


class TestDiverseImplementations:
    def test_different_binaries_same_result_full_diversity(self):
        soc = MPSoC()
        loop_prog = assemble(SUM_LOOP, base=soc.config.text_base)
        formula_prog = assemble(SUM_FORMULA, base=0x0002_0000)
        soc.load(loop_prog)
        soc.load(formula_prog)
        soc.start_core(0, loop_prog.entry)
        soc.start_core(1, formula_prog.entry)
        soc.run()
        # Functionally redundant: both computed sum(1..100).
        assert soc.memory.read(soc.config.data_bases[0], 8) == 5050
        assert soc.memory.read(soc.config.data_bases[1], 8) == 5050
        # Different instruction streams: no monitored cycle ever
        # matched on the instruction signature once both were running.
        stats = soc.safedm.stats
        assert stats.no_diversity_cycles == 0
        assert stats.no_instruction_diversity_cycles < \
            stats.sampled_cycles * 0.05

    def test_diverse_implementations_never_interrupt(self):
        soc = MPSoC(mode=ReportingMode.INTERRUPT_FIRST)
        loop_prog = assemble(SUM_LOOP, base=soc.config.text_base)
        formula_prog = assemble(SUM_FORMULA, base=0x0002_0000)
        soc.load(loop_prog)
        soc.load(formula_prog)
        soc.start_core(0, loop_prog.entry)
        soc.start_core(1, formula_prog.entry)
        soc.run()
        assert not soc.safedm.irq.pending


class TestThirdCoreNoise:
    def _three_core_config(self):
        base = SocConfig()
        return SocConfig(num_cores=3,
                         data_bases=(base.data_bases[0],
                                     base.data_bases[1],
                                     0x6000_0000))

    def test_noisy_neighbour_perturbs_the_pair(self):
        """A third core's bus traffic changes the redundant pair's
        timing — the 'other tasks scheduled' effect the paper's
        bare-metal setup deliberately excludes."""
        quiet = MPSoC()
        quiet.start_redundant(program("bitonic"))
        quiet.run()

        noisy = MPSoC(config=self._three_core_config())
        noisy.start_redundant(program("bitonic"))
        # The neighbour runs a store-heavy kernel on the shared bus.
        noise_prog = program("pm")
        noisy.start_core(2, noise_prog.entry)
        while not all(noisy.cores[i].finished for i in noisy.monitored):
            noisy.step()
        noisy.safedm.finish()

        # The pair still finishes and computes correct results.
        from repro.workloads import workload
        expected = workload("bitonic").expected_checksum
        assert noisy.memory.read(noisy.config.data_bases[0], 8) == \
            expected
        assert noisy.memory.read(noisy.config.data_bases[1], 8) == \
            expected
        # Contention slows the pair down.
        assert noisy.cycle > quiet.cycle
        # And the noise core made real progress too.
        assert noisy.cores[2].stats.committed > 1000

    def test_monitor_only_watches_the_pair(self):
        noisy = MPSoC(config=self._three_core_config())
        noisy.start_redundant(program("countnegative"))
        noise_prog = program("bitcount")
        noisy.start_core(2, noise_prog.entry)
        while not all(noisy.cores[i].finished for i in noisy.monitored):
            noisy.step()
        assert noisy.monitored == (0, 1)
        # SafeDM sampled exactly the pair's live window.
        assert noisy.safedm.stats.sampled_cycles > 0
