"""Disassembler tests: rendering and encode/decode round trips."""

from repro.isa import assemble
from repro.isa.disassembler import (
    disassemble_program,
    disassemble_word,
    format_listing,
)


class TestDisassembleWord:
    def test_known_word(self):
        assert disassemble_word(0x00C58533) == "add a0, a1, a2"

    def test_unknown_word_renders_as_data(self):
        assert disassemble_word(0xFFFFFFFF) == ".word 0xffffffff"

    def test_nop(self):
        assert disassemble_word(0x00000013) == "addi zero, zero, 0"


class TestRoundTrip:
    SOURCE = """
_start:
    li t0, 42
    la t1, data
loop:
    ld t2, 0(t1)
    add t0, t0, t2
    addi t1, t1, 8
    bnez t2, loop
    sd t0, 0(gp)
    ebreak
data:
    .dword 7, 0
"""

    def test_reassembly_round_trip(self):
        """Disassembled text reassembles to the identical image."""
        program = assemble(self.SOURCE, base=0x10000)
        listing = disassemble_program(program)
        # Rebuild source from instruction rows only (data needs .dword).
        text_rows = [t for _, _, t in listing if not t.startswith(".word")]
        data_words = [w for _, w, t in listing if t.startswith(".word")]
        rebuilt_src = "\n".join(text_rows) + "\n" \
            + "\n".join(".word %d" % w for w in data_words)
        rebuilt = assemble(rebuilt_src, base=0x10000)
        assert list(rebuilt.words()) == list(program.words())

    def test_listing_format_includes_labels(self):
        program = assemble(self.SOURCE, base=0x10000)
        rows = disassemble_program(program)
        text = format_listing(rows, symbols=program.symbols)
        assert "_start:" in text
        assert "loop:" in text
        assert "0x00010000" in text

    def test_listing_row_count(self):
        program = assemble(self.SOURCE, base=0x10000)
        rows = disassemble_program(program)
        assert len(rows) == program.size // 4
