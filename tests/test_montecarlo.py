"""Monte-Carlo subsystem tests: batched == scalar, determinism, stats.

The load-bearing property: a :class:`BatchedCampaign` is an
*optimization*, never a behaviour change.  Every trial it resolves —
analytically from the golden run's access log or by forked simulation
— must be field-for-field identical to what the scalar per-trial
injectors return for the same fault, and the whole campaign must be a
pure function of ``(program, config, seed, trials)``: independent of
the worker count, the column backend, and the execution tier.
"""

import dataclasses
import json
from functools import lru_cache
from types import SimpleNamespace

import pytest

from repro.baselines.unaware import compare_outputs
from repro.cli import main
from repro.fault import (
    FaultEffect,
    ForkEngine,
    InjectionResult,
    inject_common_cause,
    inject_transient,
    shared_address_config,
)
from repro.montecarlo import (
    AccessIndex,
    BatchedCampaign,
    TrialBatch,
    batch_statistics,
    ccf_effects,
    coverage_by_cycle,
    divergence_latency_cdf,
    diversity_histogram,
    ecdf,
    numpy_available,
    resolve_backend,
)
from repro.montecarlo.batch import (
    CLASS_DETECTED,
    CLASS_MASKED,
    CLASS_SILENT_CCF,
    STATUS_ANALYTIC,
    STATUS_SIMULATED,
)
from repro.montecarlo.golden import GOLDEN_RATIO_32
from repro.workloads import program

KERNEL = "countnegative"  # short, memory-touching, CCF-vulnerable
MAX_CYCLES = 200_000
TRIALS = 48
SEED = 7


@lru_cache(maxsize=8)
def ccf_run(backend="auto", jobs=1, engine="fast", trials=TRIALS,
            seed=SEED):
    """One finished CCF campaign, cached per configuration."""
    campaign = BatchedCampaign(program(KERNEL), benchmark=KERNEL,
                               config=shared_address_config(),
                               max_cycles=MAX_CYCLES, engine=engine,
                               backend=backend)
    batch = campaign.sample_ccf(trials, seed=seed)
    result = campaign.run(batch, jobs=jobs, seed=seed)
    return campaign, batch, result


@lru_cache(maxsize=2)
def transient_run(trials=32, seed=SEED):
    campaign = BatchedCampaign(program(KERNEL), benchmark=KERNEL,
                               config=shared_address_config(),
                               max_cycles=MAX_CYCLES, engine="fast")
    batch = campaign.sample_transient(trials, seed=seed)
    result = campaign.run(batch, jobs=1, seed=seed)
    return campaign, batch, result


class TestBatchedEqualsScalar:
    """Every batched row reconstitutes to the scalar injector's result."""

    def test_ccf_matches_scalar_fork_path(self):
        campaign, batch, _ = ccf_run()
        base = campaign.artifact.base
        fork = ForkEngine(campaign.program, base,
                          config=campaign.config)
        for i in range(batch.n):
            scalar = inject_common_cause(
                campaign.program, int(batch.columns["cycle"][i]),
                int(batch.columns["stimulus"][i]), base.checksum,
                config=campaign.config, max_cycles=MAX_CYCLES,
                fork=fork, engine="fast")
            assert dataclasses.asdict(batch.result(i)) \
                == dataclasses.asdict(scalar), "trial %d" % i

    def test_transient_matches_scalar_fork_path(self):
        campaign, batch, _ = transient_run()
        base = campaign.artifact.base
        fork = ForkEngine(campaign.program, base,
                          config=campaign.config)
        cols = batch.columns
        for i in range(batch.n):
            scalar = inject_transient(
                campaign.program, int(cols["cycle"][i]),
                int(cols["core"][i]), int(cols["register"][i]),
                int(cols["bit"][i]), base.checksum,
                config=campaign.config, max_cycles=MAX_CYCLES,
                fork=fork, engine="fast")
            assert dataclasses.asdict(batch.result(i)) \
                == dataclasses.asdict(scalar), "trial %d" % i

    def test_both_resolution_paths_exercised(self):
        _, _, result = ccf_run()
        assert result.static > 0
        assert result.simulated > 0
        assert result.static + result.analytic + result.simulated \
            == TRIALS

    def test_static_prefilter_changes_status_not_classification(self):
        """With the static pre-filter disabled every statically-proven
        trial falls back to the dynamic access log — and must get the
        same classification (static masked is a subset of dynamic
        masked), only its status differs."""
        campaign = BatchedCampaign(program(KERNEL), benchmark=KERNEL,
                                   config=shared_address_config(),
                                   max_cycles=MAX_CYCLES, engine="fast",
                                   static_prefilter=False)
        batch = campaign.sample_ccf(TRIALS, seed=SEED)
        result = campaign.run(batch, jobs=1, seed=SEED)
        _, pre_batch, pre_result = ccf_run()
        assert result.static == 0
        assert result.analytic == pre_result.static + pre_result.analytic
        assert result.simulated == pre_result.simulated
        assert batch.column("classification") \
            == pre_batch.column("classification")
        assert batch.counts() == pre_batch.counts()

    def test_no_silent_escape_in_diverse_cycle(self):
        _, batch, _ = ccf_run()
        assert batch.silent_despite_diversity == 0


class TestDeterminism:
    """Same seed => bit-identical campaign, whatever the plumbing."""

    def test_jobs_do_not_change_results(self):
        _, b1, r1 = ccf_run(jobs=1)
        _, b2, r2 = ccf_run(jobs=2)
        assert r1.summary_dict() == r2.summary_dict()
        assert b1.as_dict() == b2.as_dict()

    def test_backends_identical(self):
        if not numpy_available():
            pytest.skip("numpy not installed")
        _, bn, rn = ccf_run(backend="numpy")
        _, bp, rp = ccf_run(backend="python")
        assert rn.summary_dict() == rp.summary_dict()
        assert bn.as_dict() == bp.as_dict()

    def test_engine_tiers_identical(self):
        _, bf, rf = ccf_run(engine="fast", trials=16, seed=3)
        _, br, rr = ccf_run(engine="reference", trials=16, seed=3)
        assert rf.summary_dict() == rr.summary_dict()
        assert bf.as_dict() == br.as_dict()

    def test_sampling_is_a_pure_function_of_the_seed(self):
        campaign, batch, _ = ccf_run()
        again = campaign.sample_ccf(TRIALS, seed=SEED)
        assert again.column("cycle") == batch.column("cycle")
        assert again.column("stimulus") == batch.column("stimulus")

    def test_statistics_deterministic(self):
        _, batch, result = ccf_run()
        one = batch_statistics(batch, end_cycle=result.golden_cycles)
        two = batch_statistics(batch, end_cycle=result.golden_cycles)
        assert one == two


def _result(finished=True, output0=1, output1=1, golden=1,
            trapped=False, cycle=10, end_cycle=100,
            effects=(FaultEffect(register=3, bit=7),
                     FaultEffect(register=3, bit=7))):
    return InjectionResult(
        fault_cycle=cycle,
        outcome=compare_outputs(output0, output1, golden),
        diversity_at_injection=True,
        no_diversity_cycles=4,
        effects=effects,
        finished=finished,
        end_cycle=end_cycle,
        trapped=trapped,
    )


class TestTrialBatch:
    def test_fill_result_round_trip(self):
        batch = TrialBatch("ccf", 1, backend="python",
                           golden_checksum=1)
        batch.set_ccf_trial(0, 10, 0xABC)
        original = _result(output0=5, output1=5)  # silent escape
        batch.fill_from_result(0, original, death_cycle=50)
        assert dataclasses.asdict(batch.result(0)) \
            == dataclasses.asdict(original)
        assert int(batch.columns["death_cycle"][0]) == 50
        assert batch.result(0).classification == "silent_ccf"

    def test_trap_round_trip(self):
        batch = TrialBatch("ccf", 1, backend="python",
                           golden_checksum=1)
        batch.set_ccf_trial(0, 10, 0xABC)
        original = _result(finished=False, trapped=True, end_cycle=42)
        assert original.classification == "trap"
        batch.fill_from_result(0, original)
        restored = batch.result(0)
        assert restored.trapped is True
        assert restored.classification == "trap"
        assert restored.end_cycle == 42
        assert batch.traps == 1

    def test_counts(self):
        batch = TrialBatch("ccf", 3, backend="python",
                           golden_checksum=1)
        batch.fill_from_result(0, _result(output0=1, output1=1))
        batch.fill_from_result(1, _result(output0=2, output1=3))
        batch.fill_from_result(2, _result(finished=False))
        counts = batch.counts()
        assert counts["masked"] == 1
        assert counts["detected"] == 1
        assert counts["hang"] == 1
        assert "trap" in counts
        assert batch.count_status(STATUS_SIMULATED) == 3
        assert "masked=1" in batch.summary()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TrialBatch("bogus", 1)

    def test_resolve_backend(self):
        assert resolve_backend("python") == "python"
        with pytest.raises(ValueError):
            resolve_backend("bogus")

    def test_pure_python_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MC_PURE_PYTHON", "1")
        assert numpy_available() is False
        assert resolve_backend("auto") == "python"


class TestAccessIndex:
    #: r5: write@0, read@4; r7: write@9; r9: untouched.  The (2, idx)
    #: checkpoint marker must be ignored.
    LOG = [(3, 0), (1, 5), (2, 0), (3, 4), (0, 5), (3, 9), (1, 7)]

    def index(self):
        return AccessIndex(self.LOG, end_cycle=20)

    def test_first_access(self):
        index = self.index()
        assert index.first_access(5, 0) == (1, 0)
        assert index.first_access(5, 1) == (0, 4)
        assert index.first_access(5, 5) is None
        assert index.first_access(7, 0) == (1, 9)
        assert index.first_access(9, 0) is None

    def test_corruption_fate(self):
        index = self.index()
        # First access is a write: dead the moment it is overwritten.
        assert index.corruption_fate(5, 0) == (True, 0)
        # A read comes first: live, must be simulated.
        assert index.corruption_fate(5, 1) == (False, -1)
        # Never touched again: dead until the end of the run.
        assert index.corruption_fate(5, 5) == (True, 20)
        assert index.corruption_fate(7, 3) == (True, 9)
        assert index.corruption_fate(9, 0) == (True, 20)


class TestCcfEffects:
    #: Digests near 2^32-1 stress the no-overflow claim of the
    #: vectorized uint64 arithmetic.
    ARTIFACT = SimpleNamespace(
        state_digests=([0xFFFFFFFF, 0x12345678, 7],
                       [0x0BADF00D, 0xFFFFFFFF, 11]),
        activity_digests=([0xDEADBEEF, 0xFFFFFFFF, 13],
                          [0x12345678, 0x0BADF00D, 17]),
    )
    CYCLES = [0, 1, 2, 1]
    STIMULI = [0xFFFFFFFF, 0, 0x5EED, 0xFFFFFFFF]

    def test_matches_fault_model_arithmetic(self):
        reg0, bit0, reg1, bit1 = ccf_effects(
            self.ARTIFACT, self.CYCLES, self.STIMULI,
            backend="python")
        for i, (cycle, stimulus) in enumerate(zip(self.CYCLES,
                                                  self.STIMULI)):
            for core, (regs, bits) in enumerate(((reg0, bit0),
                                                 (reg1, bit1))):
                state = self.ARTIFACT.state_digests[core][cycle]
                activity = self.ARTIFACT.activity_digests[core][cycle]
                mixed = (((state ^ activity) * GOLDEN_RATIO_32
                          + stimulus) & 0xFFFFFFFF)
                assert regs[i] == 1 + (mixed % 31)
                assert bits[i] == (mixed >> 8) % 64

    def test_numpy_matches_python(self):
        if not numpy_available():
            pytest.skip("numpy not installed")
        py = ccf_effects(self.ARTIFACT, self.CYCLES, self.STIMULI,
                         backend="python")
        np = ccf_effects(self.ARTIFACT, self.CYCLES, self.STIMULI,
                         backend="numpy")
        assert py == np


def _synthetic_batch():
    """Four hand-filled trials: detected, masked, flagged silent
    escape, unflagged silent escape."""
    batch = TrialBatch("ccf", 4, backend="python", golden_checksum=1)
    cols = batch.columns
    for i, (cycle, cls, div, status) in enumerate((
            (0, CLASS_DETECTED, 1, STATUS_SIMULATED),
            (5, CLASS_MASKED, 1, STATUS_ANALYTIC),
            (10, CLASS_SILENT_CCF, 0, STATUS_SIMULATED),
            (15, CLASS_SILENT_CCF, 1, STATUS_SIMULATED))):
        cols["cycle"][i] = cycle
        cols["classification"][i] = cls
        cols["diversity"][i] = div
        cols["status"][i] = status
        cols["end_cycle"][i] = 20
        cols["death_cycle"][i] = 20 if cls == CLASS_MASKED else -1
    return batch


class TestStats:
    def test_ecdf(self):
        assert ecdf([]) == []
        assert ecdf([3, 1, 3]) == [(1, 1 / 3), (3, 1.0)]

    def test_divergence_latency_excludes_analytic(self):
        cdf = divergence_latency_cdf(_synthetic_batch())
        # Simulated latencies 20-0, 20-10, 20-15; the masked-analytic
        # trial at cycle 5 contributes nothing.
        assert cdf == [(5, 1 / 3), (10, 2 / 3), (20, 1.0)]

    def test_coverage_by_cycle(self):
        rows = coverage_by_cycle(_synthetic_batch(), bins=2,
                                 end_cycle=20)
        assert len(rows) == 2
        # Bin [0, 10): detected + masked -> 1/2 covered.
        assert rows[0]["trials"] == 2 and rows[0]["covered"] == 1
        # Bin [10, 20): flagged escape counts, unflagged does not.
        assert rows[1]["trials"] == 2 and rows[1]["covered"] == 1

    def test_diversity_histogram(self):
        hist = diversity_histogram(_synthetic_batch())
        assert hist["detected"]["diverse"] == 1
        assert hist["silent_ccf"]["not_diverse"] == 1
        assert hist["silent_ccf"]["diverse"] == 1

    def test_batch_statistics_bundle(self):
        stats = batch_statistics(_synthetic_batch(), bins=2,
                                 end_cycle=20, n_boot=20)
        assert stats["trials"] == 4
        assert stats["counts"]["detected"] == 1
        assert stats["rates"]["masked"] == 0.25
        assert stats["divergence_latency"]["n"] == 3
        assert stats["divergence_latency"]["p50"] == 10
        assert stats["masked_lifetime"]["n"] == 1
        assert {"point", "low", "high"} <= set(
            stats["divergence_latency"]["mean_ci"])


class TestCli:
    def test_montecarlo_json(self, capsys):
        assert main(["montecarlo", KERNEL, "--trials", "40",
                     "--seed", "5", "--shared", "--format",
                     "json", "--engine", "fast"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["trials"] == 40
        assert payload["summary"]["counts"]["silent_despite_diversity"] \
            == 0
        assert payload["statistics"]["coverage_by_cycle"]

    def test_montecarlo_text(self, capsys):
        assert main(["montecarlo", KERNEL, "--trials", "30",
                     "--kind", "transient", "--shared",
                     "--engine", "fast"]) == 0
        out = capsys.readouterr().out
        assert "transient trials" in out
        assert "coverage" in out
