"""History module (episode histogram) unit tests."""

import pytest

from repro.core.history import EpisodeHistogram, HistoryModule


class TestEpisodeHistogram:
    def test_single_episode(self):
        hist = EpisodeHistogram(bin_size=1, num_bins=8)
        for _ in range(3):
            hist.sample(True)
        hist.sample(False)
        assert hist.episodes == 1
        assert hist.total_cycles == 3
        assert hist.longest == 3
        assert hist.bins[2] == 1  # length-3 episode in bin index 2

    def test_multiple_episodes(self):
        hist = EpisodeHistogram(bin_size=1, num_bins=8)
        pattern = [True, False, True, True, False, True, True, True]
        for value in pattern:
            hist.sample(value)
        hist.finish()
        assert hist.episodes == 3
        assert hist.bins[0] == 1
        assert hist.bins[1] == 1
        assert hist.bins[2] == 1

    def test_finish_closes_open_episode(self):
        hist = EpisodeHistogram()
        hist.sample(True)
        assert hist.episodes == 0  # still open
        hist.finish()
        assert hist.episodes == 1

    def test_configurable_bin_size(self):
        hist = EpisodeHistogram(bin_size=4, num_bins=4)
        for length in (1, 4, 5, 8, 9):
            for _ in range(length):
                hist.sample(True)
            hist.sample(False)
        # lengths 1..4 -> bin 0; 5..8 -> bin 1; 9..12 -> bin 2
        assert hist.bins[0] == 2
        assert hist.bins[1] == 2
        assert hist.bins[2] == 1

    def test_overflow_bin_clamps(self):
        hist = EpisodeHistogram(bin_size=1, num_bins=4)
        for _ in range(100):
            hist.sample(True)
        hist.finish()
        assert hist.bins[3] == 1  # clamped to the last bin

    def test_bin_ranges(self):
        hist = EpisodeHistogram(bin_size=2, num_bins=3)
        ranges = hist.bin_ranges()
        assert ranges[0] == (1, 2)
        assert ranges[1] == (3, 4)
        assert ranges[2] == (5, None)  # open-ended overflow bin

    def test_bad_bin_size(self):
        with pytest.raises(ValueError):
            EpisodeHistogram(bin_size=0)

    def test_reset(self):
        hist = EpisodeHistogram()
        hist.sample(True)
        hist.finish()
        hist.reset()
        assert hist.episodes == 0
        assert hist.total_cycles == 0
        assert sum(hist.bins) == 0


class TestHistoryModule:
    def test_all_conditions_tracked(self):
        history = HistoryModule(bin_size=1, num_bins=8)
        history.sample(no_data_diversity=True,
                       no_instruction_diversity=False,
                       no_diversity=False, zero_staggering=True)
        history.finish()
        assert history.histograms["no_data_diversity"].total_cycles == 1
        assert history.histograms["zero_staggering"].total_cycles == 1
        assert history.histograms["no_diversity"].total_cycles == 0

    def test_condition_names(self):
        history = HistoryModule()
        assert set(history.histograms) == set(HistoryModule.CONDITIONS)

    def test_reset_all(self):
        history = HistoryModule()
        history.sample(no_data_diversity=True,
                       no_instruction_diversity=True,
                       no_diversity=True, zero_staggering=True)
        history.reset()
        for hist in history.histograms.values():
            assert hist.total_cycles == 0
