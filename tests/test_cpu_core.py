"""Core model tests: architectural correctness and timing behaviour."""

import pytest

from conftest import run_asm_single

DATA0 = 0x4000_0000


def result_of(source, offset=0, **kwargs):
    soc = run_asm_single(source, **kwargs)
    assert soc.cores[0].finished, "program did not finish"
    return soc.memory.read(DATA0 + offset, 8)


class TestArchitecturalExecution:
    def test_arithmetic_chain(self):
        assert result_of("""
_start:
    li t0, 10
    li t1, 32
    add t2, t0, t1
    sd t2, 0(gp)
    ebreak
""") == 42

    def test_memory_round_trip(self):
        assert result_of("""
_start:
    li t0, 0x1234
    sd t0, 32(gp)
    ld t1, 32(gp)
    addi t1, t1, 1
    sd t1, 0(gp)
    ebreak
""") == 0x1235

    def test_subword_accesses(self):
        assert result_of("""
_start:
    li t0, -1
    sb t0, 32(gp)
    lbu t1, 32(gp)   # 0xFF
    lb t2, 32(gp)    # -1
    add t3, t1, t2   # 0xFE
    sd t3, 0(gp)
    ebreak
""") == 0xFE

    def test_loop_sum(self):
        # sum 1..100 = 5050
        assert result_of("""
_start:
    li t0, 100
    li t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    sd t1, 0(gp)
    ebreak
""") == 5050

    def test_function_call(self):
        assert result_of("""
_start:
    li a0, 6
    call square
    sd a0, 0(gp)
    ebreak
square:
    mul a0, a0, a0
    ret
""") == 36

    def test_recursion_uses_stack(self):
        # sum(5) via recursion = 15
        assert result_of("""
_start:
    li a0, 5
    call rsum
    sd a0, 0(gp)
    ebreak
rsum:
    beqz a0, base
    addi sp, sp, -16
    sd ra, 8(sp)
    sd a0, 0(sp)
    addi a0, a0, -1
    call rsum
    ld t0, 0(sp)
    add a0, a0, t0
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
base:
    ret
""") == 15

    def test_gp_points_to_private_data(self):
        soc = run_asm_single("_start:\n sd gp, 0(gp)\n ebreak\n")
        assert soc.memory.read(DATA0, 8) == DATA0

    def test_fence_is_neutral(self):
        assert result_of("""
_start:
    li t0, 7
    fence
    sd t0, 0(gp)
    ebreak
""") == 7

    def test_taken_and_not_taken_branches(self):
        assert result_of("""
_start:
    li t0, 1
    li t1, 0
    beqz t0, wrong      # not taken
    addi t1, t1, 1
    bnez t0, right      # taken
wrong:
    addi t1, t1, 100
right:
    sd t1, 0(gp)
    ebreak
""") == 1


class TestTimingBehaviour:
    def test_dual_issue_faster_than_single(self):
        """Independent instruction pairs should dual-issue."""
        source = """
_start:
    li s1, 500
loop:
    add t0, t0, t1
    add t2, t2, t3
    add t4, t4, t5
    add t5, t5, t6
    addi s1, s1, -1
    bnez s1, loop
    ebreak
"""
        soc = run_asm_single(source)
        core = soc.cores[0]
        assert core.stats.dual_issued_groups > 500
        assert core.stats.ipc > 1.0

    def test_dependent_mul_chain_limits_ipc(self):
        """A dependent multiply chain exposes the 3-cycle mul latency."""
        source = """
_start:
    li s1, 500
    li t0, 3
loop:
    mul t0, t0, t0
    mul t0, t0, t0
    mul t0, t0, t0
    mul t0, t0, t0
    addi s1, s1, -1
    bnez s1, loop
    ebreak
"""
        soc = run_asm_single(source, max_cycles=50_000)
        assert soc.cores[0].stats.ipc < 1.0

    def test_div_slower_than_mul(self):
        def run(op):
            return run_asm_single("""
_start:
    li s1, 100
    li t1, 7
    li t2, 3
loop:
    %s t0, t1, t2
    addi s1, s1, -1
    bnez s1, loop
    ebreak
""" % op).cycle
        assert run("div") > run("mul") + 500

    def test_cold_cache_load_stalls(self):
        """A load missing L1D must take many more cycles than a hit."""
        soc = run_asm_single("""
_start:
    ld t0, 64(gp)    # cold miss
    ld t1, 64(gp)    # hit (same line, now filled)
    ebreak
""")
        # Both loads correct; miss handling accounted.
        assert soc.cores[0].stats.dmem_wait_cycles > 10

    def test_branch_mispredict_counted(self):
        soc = run_asm_single("""
_start:
    li s1, 50
loop:
    addi s1, s1, -1
    bnez s1, loop
    ebreak
""")
        core = soc.cores[0]
        # The loop back-branch mispredicts at least at cold start and
        # at exit.
        assert core.stats.branch_mispredicts >= 2
        assert core.predictor.predictions > 0

    def test_store_buffer_absorbs_stores(self):
        soc = run_asm_single("""
_start:
    li s1, 8
    addi t1, gp, 64
loop:
    sd s1, 0(t1)
    addi t1, t1, 8
    addi s1, s1, -1
    bnez s1, loop
    ebreak
""", max_cycles=10_000)
        assert soc.cores[0].store_buffer.stats.stores_accepted == 8
        assert soc.cores[0].store_buffer.stats.coalesced > 0


class TestHaltAndDrain:
    def test_finished_after_ebreak(self):
        soc = run_asm_single("_start:\n ebreak\n")
        core = soc.cores[0]
        assert core.halted
        assert core.finished
        assert all(group is None for group in core.stages)

    def test_instructions_after_ebreak_never_execute(self):
        soc = run_asm_single("""
_start:
    li t0, 1
    sd t0, 0(gp)
    ebreak
    li t0, 99
    sd t0, 0(gp)
""")
        assert soc.memory.read(DATA0, 8) == 1

    def test_commit_count(self):
        soc = run_asm_single("""
_start:
    nop
    nop
    nop
    ebreak
""")
        assert soc.cores[0].stats.committed == 4


class TestSafeDmTaps:
    def test_stage_words_shape(self):
        soc = run_asm_single("_start:\n nop\n ebreak\n")
        words = soc.cores[0].stage_words()
        assert len(words) == 7

    def test_stage_slots_shape(self):
        soc = run_asm_single("_start:\n nop\n ebreak\n")
        slots = soc.cores[0].stage_slots()
        assert len(slots) == 7
        assert all(len(stage) == 2 for stage in slots)

    def test_inflight_words_empty_after_drain(self):
        soc = run_asm_single("_start:\n ebreak\n")
        assert soc.cores[0].inflight_words() == ()

    def test_port_samples_length(self):
        soc = run_asm_single("_start:\n ebreak\n")
        samples = soc.cores[0].regfile.port_samples()
        assert len(samples) == 6  # 4 read + 2 write ports


class TestDecodeFailure:
    def test_garbage_instruction_raises(self):
        from repro.cpu.core import SimulationError
        with pytest.raises(SimulationError):
            run_asm_single("_start:\n .word 0xffffffff\n")
