"""Analysis-layer tests: table formatting and sweep statistics."""

import pytest

from repro.analysis.stats import (
    bootstrap_ci,
    exact_quantile,
    monotonic_decay,
    run_statistics,
    summarize_sweep,
)
from repro.analysis.tables import (
    TABLE2_CLASSES,
    format_table1,
    format_table1_csv,
    format_table2,
)
from repro.soc.experiment import CellResult, RunResult


def cell(benchmark, nops, zero, nodiv):
    return CellResult(benchmark=benchmark, stagger_nops=nops,
                      zero_staggering_cycles=zero,
                      no_diversity_cycles=nodiv)


def fake_rows():
    return {
        "alpha": [cell("alpha", 0, 100, 10), cell("alpha", 100, 20, 0),
                  cell("alpha", 1000, 0, 0), cell("alpha", 10000, 0, 0)],
        "beta": [cell("beta", 0, 0, 0), cell("beta", 100, 0, 0),
                 cell("beta", 1000, 5, 0), cell("beta", 10000, 0, 0)],
    }


class TestTable1Formatting:
    def test_text_table_contains_all_cells(self):
        text = format_table1(fake_rows())
        assert "alpha" in text and "beta" in text
        assert "100" in text and "Zero stag" in text

    def test_csv_structure(self):
        csv = format_table1_csv(fake_rows())
        lines = csv.splitlines()
        assert lines[0].startswith("benchmark,zero_stag_0,no_div_0")
        assert lines[1].startswith("alpha,100,10,20,0,0,0,0,0")
        assert len(lines) == 3

    def test_missing_cell_rendering(self):
        rows = {"gamma": [cell("gamma", 0, 1, 1)]}
        text = format_table1(rows)
        assert "?" in text  # missing stagger columns marked


class TestTable2Formatting:
    def test_three_classes_present(self):
        text = format_table2()
        for klass in TABLE2_CLASSES:
            assert klass in text
        assert "SafeDM" in text
        assert "this work" in text

    def test_measured_annotations(self):
        text = format_table2({"Diversity enforced (intrusive)":
                              {"intrusiveness": "12.5%"}})
        assert "measured intrusiveness: 12.5%" in text


class TestSweepStatistics:
    def test_summary_counts(self):
        summary = summarize_sweep(fake_rows(), 0)
        assert summary.benchmarks == 2
        assert summary.total_zero_staggering == 100
        assert summary.max_no_diversity == 10
        assert summary.benchmarks_with_zero_stag == 1
        assert summary.mean_no_diversity == 5.0

    def test_monotonic_decay_flags_exceptions(self):
        verdicts = monotonic_decay(fake_rows())
        assert verdicts["alpha"] is True
        assert verdicts["beta"] is True  # 0 -> 0 is non-increasing

    def test_decay_detects_anomaly(self):
        rows = {"pm": [cell("pm", 0, 10, 0), cell("pm", 100, 5, 0),
                       cell("pm", 1000, 400000, 0),
                       cell("pm", 10000, 900000, 0)]}
        assert monotonic_decay(rows)["pm"] is False

    def test_run_statistics(self):
        runs = [RunResult(benchmark="x", stagger_nops=0, late_core=1,
                          cycles=100, committed=200,
                          zero_staggering_cycles=10,
                          no_diversity_cycles=5,
                          no_data_diversity_cycles=6,
                          no_instruction_diversity_cycles=7,
                          interrupts=0, finished=True, ipc=1.0)] * 2
        stats = run_statistics(runs)
        assert stats["runs"] == 2
        assert stats["mean_cycles"] == 100
        assert stats["all_finished"] == 1.0

    def test_empty_runs(self):
        assert run_statistics([]) == {}


class TestExactQuantile:
    """Hand-checked nearest-rank cases (rank = ceil(q * n))."""

    def test_hand_checked_ranks(self):
        values = [10, 20, 30, 40, 50]
        assert exact_quantile(values, 0.0) == 10   # rank clamps to 1
        assert exact_quantile(values, 0.2) == 10   # ceil(1.0) = 1
        assert exact_quantile(values, 0.21) == 20  # ceil(1.05) = 2
        assert exact_quantile(values, 0.5) == 30   # ceil(2.5) = 3
        assert exact_quantile(values, 0.9) == 50   # ceil(4.5) = 5
        assert exact_quantile(values, 1.0) == 50

    def test_unsorted_input(self):
        assert exact_quantile([50, 10, 40, 20, 30], 0.5) == 30

    def test_single_element(self):
        assert exact_quantile([7], 0.0) == 7
        assert exact_quantile([7], 1.0) == 7

    def test_float_rank_regression(self):
        # 0.1 * 30 == 3.0000000000000004 in binary floats; a naive
        # ceil would shift the rank from 3 to 4 and return 4.
        values = list(range(1, 31))
        assert exact_quantile(values, 0.1) == 3

    def test_result_is_an_observed_value(self):
        values = [1, 100]
        for q in (0.0, 0.3, 0.5, 0.7, 1.0):
            assert exact_quantile(values, q) in values

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            exact_quantile([], 0.5)
        with pytest.raises(ValueError):
            exact_quantile([1], 1.5)
        with pytest.raises(ValueError):
            exact_quantile([1], -0.1)


class TestBootstrapCi:
    def test_deterministic_for_a_seed(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8]
        assert bootstrap_ci(values, seed=3) == bootstrap_ci(values,
                                                           seed=3)

    def test_interval_brackets_the_point(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8]
        ci = bootstrap_ci(values, n_boot=200)
        assert ci["low"] <= ci["point"] <= ci["high"]
        assert ci["point"] == 4.5
        assert ci["n_boot"] == 200 and ci["alpha"] == 0.05

    def test_constant_sample_collapses(self):
        ci = bootstrap_ci([5, 5, 5, 5], n_boot=50)
        assert ci["low"] == ci["high"] == ci["point"] == 5

    def test_custom_statistic(self):
        values = [1, 2, 3, 100]
        ci = bootstrap_ci(values, statistic=max, n_boot=50)
        assert ci["point"] == 100
        assert ci["high"] == 100

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
