"""Unit tests for the functional memory."""

import pytest

from repro.mem.memory import Memory, MemoryError_, PAGE_SIZE


class TestScalarAccess:
    def test_uninitialised_reads_zero(self):
        mem = Memory()
        assert mem.read(0x1000, 8) == 0

    def test_write_read_round_trip(self):
        mem = Memory()
        for size in (1, 2, 4, 8):
            value = (1 << (8 * size)) - 3
            mem.write(0x2000, value, size)
            assert mem.read(0x2000, size) == value

    def test_write_masks_to_size(self):
        mem = Memory()
        mem.write(0x100, 0x1_FF, 1)
        assert mem.read(0x100, 1) == 0xFF

    def test_little_endian_layout(self):
        mem = Memory()
        mem.write(0x100, 0x0102030405060708, 8)
        assert mem.read(0x100, 1) == 0x08
        assert mem.read(0x107, 1) == 0x01
        assert mem.read(0x100, 4) == 0x05060708

    def test_misaligned_access_raises(self):
        mem = Memory()
        with pytest.raises(MemoryError_):
            mem.read(0x101, 2)
        with pytest.raises(MemoryError_):
            mem.write(0x102, 0, 4)
        with pytest.raises(MemoryError_):
            mem.read(0x104, 8)

    def test_byte_access_any_alignment(self):
        mem = Memory()
        mem.write(0x103, 7, 1)
        assert mem.read(0x103, 1) == 7


class TestBlobAccess:
    def test_blob_round_trip(self):
        mem = Memory()
        blob = bytes(range(256))
        mem.load_blob(0x3000, blob)
        assert mem.read_blob(0x3000, 256) == blob

    def test_blob_spanning_pages(self):
        mem = Memory()
        blob = b"\xAB" * (PAGE_SIZE + 100)
        start = PAGE_SIZE - 50
        mem.load_blob(start, blob)
        assert mem.read_blob(start, len(blob)) == blob
        assert mem.touched_pages() >= 2

    def test_word_read(self):
        mem = Memory()
        mem.load_blob(0x1000, (0x00C58533).to_bytes(4, "little"))
        assert mem.read_word(0x1000) == 0x00C58533

    def test_distinct_regions_are_independent(self):
        mem = Memory()
        mem.write(0x4000_0000, 1, 8)
        mem.write(0x5000_0000, 2, 8)
        assert mem.read(0x4000_0000, 8) == 1
        assert mem.read(0x5000_0000, 8) == 2
