"""Capture/replay tests: codec losslessness and bit-exact replay.

The load-bearing property: for ANY kernel and ANY monitor
configuration, replaying a captured stream trace produces exactly the
stats, histograms, and diff counters a live simulation with that
configuration would have — SafeDM is observational, so the streams
are monitor-independent.
"""

import dataclasses

import pytest

from repro.core.monitor import ReportingMode
from repro.core.signatures import (
    IsVariant,
    SignatureConfig,
    inflight_from_stage_words,
)
from repro.replay import (
    MonitorPoint,
    MonitorSweep,
    ReplayEngine,
    ReplayMonitor,
    replay_run,
    threshold_points,
)
from repro.soc.config import SocConfig
from repro.soc.experiment import run_redundant, run_redundant_captured
from repro.trace.stream_trace import (
    CoreSample,
    CycleSample,
    StreamTrace,
    TraceMeta,
)
from repro.workloads import all_names, program

#: Truncated so the 29-kernel property sweep stays test-suite cheap;
#: every kernel still exercises thousands of monitored cycles.
MAX_CYCLES = 4000

#: Monitor configurations spanning both IS variants, non-default DS
#: geometry, and all three reporting modes.
CONFIGS = (
    (SignatureConfig(), ReportingMode.POLLING, 1),
    (SignatureConfig(is_variant=IsVariant.INFLIGHT),
     ReportingMode.INTERRUPT_FIRST, 1),
    (SignatureConfig(num_ports=2, ds_depth=3),
     ReportingMode.INTERRUPT_THRESHOLD, 8),
)


def _histogram_state(history):
    return {name: dict(bins=list(h.bins), episodes=h.episodes,
                       total_cycles=h.total_cycles, longest=h.longest)
            for name, h in history.histograms.items()}


def _live(prog, name, signature, mode, threshold, **kwargs):
    """A live run exposing its monitor (histograms and diff unit)."""
    grabbed = {}
    result = run_redundant(prog, benchmark=name,
                           config=SocConfig(signature=signature),
                           mode=mode, threshold=threshold,
                           max_cycles=MAX_CYCLES,
                           soc_hook=lambda soc: grabbed.update(soc=soc),
                           **kwargs)
    return result, grabbed["soc"].safedm


# --- the headline property: live == replayed, every kernel -------------------

@pytest.mark.slow
@pytest.mark.parametrize("name", all_names())
def test_replay_matches_live_for_every_kernel(name):
    prog = program(name)
    _, trace = run_redundant_captured(prog, benchmark=name,
                                      max_cycles=MAX_CYCLES)
    engine = ReplayEngine(trace)
    for signature, mode, threshold in CONFIGS:
        live_result, live_monitor = _live(prog, name, signature, mode,
                                          threshold)
        # Fast path (memoized accounting + closed-form interrupts).
        replayed = engine.run_result(signature=signature, mode=mode,
                                     threshold=threshold)
        assert dataclasses.asdict(replayed) == \
            dataclasses.asdict(live_result), (name, signature, mode)
        outcome = engine.replay(signature=signature, mode=mode,
                                threshold=threshold)
        assert dataclasses.asdict(outcome.diff_stats) == \
            dataclasses.asdict(live_monitor.instruction_diff.stats)
        assert _histogram_state(outcome.history) == \
            _histogram_state(live_monitor.history)
        # Reference path (a real DiversityMonitor driven per cycle).
        reference = ReplayMonitor(trace, signature=signature, mode=mode,
                                  threshold=threshold)
        assert dataclasses.asdict(reference.run_result()) == \
            dataclasses.asdict(live_result)
        assert dataclasses.asdict(reference.stats) == \
            dataclasses.asdict(live_monitor.stats)
        assert _histogram_state(reference.history) == \
            _histogram_state(live_monitor.history)


@pytest.mark.slow
def test_replay_matches_live_when_staggered():
    """Staggering preloads the instruction-diff counter; the preload
    must ride along in the trace metadata."""
    name = "cosf"
    prog = program(name)
    for late_core in (0, 1):
        _, trace = run_redundant_captured(prog, benchmark=name,
                                          stagger_nops=100,
                                          late_core=late_core,
                                          max_cycles=MAX_CYCLES)
        for signature, mode, threshold in CONFIGS:
            live_result, _ = _live(prog, name, signature, mode,
                                   threshold, stagger_nops=100,
                                   late_core=late_core)
            replayed = replay_run(trace, signature=signature, mode=mode,
                                  threshold=threshold)
            assert dataclasses.asdict(replayed) == \
                dataclasses.asdict(live_result), (late_core, signature)


def test_engine_memoizes_accounting_across_thresholds():
    prog = program("cosf")
    _, trace = run_redundant_captured(prog, benchmark="cosf",
                                      max_cycles=MAX_CYCLES)
    engine = ReplayEngine(trace)
    for threshold in range(1, 17):
        engine.run_result(mode=ReportingMode.INTERRUPT_THRESHOLD,
                          threshold=threshold)
    assert engine.accounting_passes == 1
    engine.run_result(signature=CONFIGS[2][0])
    assert engine.accounting_passes == 2


# --- codec round trips -------------------------------------------------------

def _round_trip(trace):
    blob = trace.encode()
    decoded = StreamTrace.decode(blob)
    assert decoded.samples == trace.samples
    assert dataclasses.asdict(decoded.meta) == \
        dataclasses.asdict(trace.meta)
    return decoded, blob


def test_codec_round_trip_empty():
    trace = StreamTrace(meta=TraceMeta(benchmark="empty"))
    decoded, _ = _round_trip(trace)
    assert len(decoded) == 0


def test_codec_round_trip_single_cycle():
    sample = CycleSample(7, (
        CoreSample(False, 1, ((1, 0xDEAD), (0, 0)),
                   ((0x1234,), None, (0x5678, 0x9ABC))),
        CoreSample(True, 0, None, None),
    ))
    trace = StreamTrace(meta=TraceMeta(benchmark="one", cycles=8),
                        samples=[sample])
    decoded, _ = _round_trip(trace)
    assert decoded.samples[0] == sample


def test_codec_round_trip_synthetic_edge_cases():
    # Holds, empty stages, repeated dictionary words, 32-bit values,
    # a (enable=0, value!=0) port sample, and a cycle gap.
    samples = [
        CycleSample(0, (
            CoreSample(False, 2, ((1, 0xFFFF_FFFF), (0, 5)),
                       (None, None, None)),
            CoreSample(False, 0, ((1, 0), (1, 1)),
                       ((0xAAAA_0001, 0xAAAA_0001), (0xAAAA_0001,))),
        )),
        CycleSample(1, (
            CoreSample(True, 1, None, None),
            CoreSample(True, 0, None, None),
        )),
        CycleSample(5, (
            CoreSample(False, 0, ((0, 0xFFFF_FFFF), (1, 5)),
                       ((), (0xAAAA_0001,), None)),
            CoreSample(False, 3, ((1, 123), (0, 0)),
                       ((0xBBBB_0002,), ())),
        )),
    ]
    trace = StreamTrace(meta=TraceMeta(benchmark="synthetic",
                                       diff_preload=42),
                        samples=samples)
    decoded, _ = _round_trip(trace)
    assert decoded.meta.diff_preload == 42


@pytest.mark.slow
def test_codec_round_trip_real_capture_and_compression():
    _, trace = run_redundant_captured(program("cosf"), benchmark="cosf",
                                      max_cycles=MAX_CYCLES)
    _, blob = _round_trip(trace)
    # The codec must actually compress: raw per-cycle state dwarfs it.
    assert len(blob) < 40 * len(trace)


def test_codec_rejects_garbage():
    with pytest.raises(ValueError):
        StreamTrace.decode(b"NOPE" + b"\x00" * 16)
    blob = StreamTrace(meta=TraceMeta()).encode()
    with pytest.raises(ValueError):
        StreamTrace.decode(blob[:6])


def test_trace_file_round_trip(tmp_path):
    trace = StreamTrace(meta=TraceMeta(benchmark="disk"), samples=[
        CycleSample(0, (CoreSample(True, 0, None, None),
                        CoreSample(True, 0, None, None)))])
    path = tmp_path / "t.trace"
    trace.save(path)
    loaded = StreamTrace.load(path)
    assert loaded.samples == trace.samples


def test_inflight_from_stage_words():
    stages = ((1, 2), None, (), (3,))
    # Reversed stage order, Nones and empties dropped.
    assert inflight_from_stage_words(stages) == (3, 1, 2)
    assert inflight_from_stage_words((None, None)) == ()


# --- the sweep driver --------------------------------------------------------

@pytest.mark.slow
def test_monitor_sweep_capture_once_replay_many(tmp_path):
    sweep = MonitorSweep(cache_dir=tmp_path)
    points = threshold_points(range(1, 9)) + (
        MonitorPoint(mode=ReportingMode.POLLING,
                     signature=CONFIGS[1][0]),)
    outcome = sweep.sweep("cosf", points, max_cycles=MAX_CYCLES)
    assert outcome.captured
    assert len(outcome.results) == len(points)
    assert sweep.traces.stores == 1

    # Interrupt count must be monotonically non-increasing in the
    # threshold (a higher bar can only fire later or never).
    irqs = [r.interrupts for r in outcome.results[:8]]
    assert irqs == sorted(irqs, reverse=True)

    # Same sweep again: pure run-cache hits, no capture, no replay.
    again = MonitorSweep(cache_dir=tmp_path)
    outcome2 = again.sweep("cosf", points, max_cycles=MAX_CYCLES)
    assert not outcome2.captured
    assert outcome2.cache_hits == len(points)
    assert [dataclasses.asdict(r) for r in outcome2.results] == \
        [dataclasses.asdict(r) for r in outcome.results]

    # New points over the same simulation: trace reused, not recaptured.
    more = MonitorSweep(cache_dir=tmp_path)
    outcome3 = more.sweep("cosf", threshold_points((20, 40)),
                          max_cycles=MAX_CYCLES)
    assert not outcome3.captured
    assert more.traces.hits == 1
